"""The intermittent-execution machine.

Executes a runtime's atom program against a :class:`~repro.hw.board.
Device`.  Under continuous power this is a single pass that still pays
each runtime's progress-logging overhead.  Under a harvester supply the
machine implements the reboot loop:

1. execute atoms, drawing energy until a brown-out interrupts;
2. clear volatile state, recharge to the turn-on voltage;
3. resume at the last *durable* position — which depends on the runtime's
   commit semantics (see :mod:`repro.sim.atoms`) — and pay the restore
   cost;
4. declare DNF when the durable position stops advancing across
   ``stall_limit`` consecutive power cycles (this is how BASE and plain
   ACE earn their "X" in Figure 7(b)).

FLEX's voltage-monitor-driven on-demand checkpointing is implemented
here: when the monitor warns and uncommitted volatile progress exists,
the machine snapshots the live intermediates to FRAM, making the current
position durable at a small cost (Figure 6, right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, InferenceAborted, PowerFailureError
from repro.hw import constants as C
from repro.obs import metrics as _obs
from repro.power.monitor import VoltageMonitor

if TYPE_CHECKING:  # avoid a circular import (hw.board uses sim.atoms)
    from repro.hw.board import Device
from repro.sim.atoms import Atom, total_cycles, validate_program
from repro.sim.results import RunResult
from repro.sim.runtime import InferenceRuntime


@dataclass
class _Cursor:
    atom: int = 0
    iteration: int = 0

    def key(self) -> Tuple[int, int]:
        return (self.atom, self.iteration)


class IntermittentMachine:
    """Drives one runtime on one device (continuous or harvested power)."""

    def __init__(
        self,
        device: "Device",
        runtime: InferenceRuntime,
        *,
        monitor: Optional[VoltageMonitor] = None,
        stall_limit: int = 6,
        max_reboots: int = 10000,
    ) -> None:
        if stall_limit < 1 or max_reboots < 1:
            raise ConfigurationError("stall_limit and max_reboots must be >= 1")
        if runtime.snapshot_on_warning and device.supply is not None and monitor is None:
            raise ConfigurationError(
                f"{runtime.name} needs a VoltageMonitor for on-demand "
                "checkpointing under harvested power"
            )
        self.device = device
        self.runtime = runtime
        self.monitor = monitor
        self.stall_limit = stall_limit
        self.max_reboots = max_reboots
        # (atoms, total_cycles) of the last validated program: the
        # runtimes memoize build_atoms(), so a session streaming samples
        # through one machine validates and sums the program once instead
        # of per inference (hot-loop hoist; pure bookkeeping, the cached
        # float is the exact value the per-run sum produced).  The list
        # itself is held — an identity compare on a freed id could alias
        # a different program.
        self._validated: Optional[Tuple[list, float]] = None

    # -- public API -----------------------------------------------------------

    def warm(self) -> None:
        """Validate the atom program ahead of the first run.

        Engine-interface twin of :meth:`FastMachine.warm`: the per-run
        memoized validation/total-cycles pass happens now, so a session's
        first sample pays the same cost as the rest.
        """
        atoms = self.runtime.build_atoms()
        if self._validated is None or self._validated[0] is not atoms:
            validate_program(atoms)
            self._validated = (atoms, total_cycles(atoms))

    def run_deferred(self, x: np.ndarray, *, defer_logits: bool = True):
        """Engine-interface twin of :meth:`FastMachine.run_deferred`.

        The reference machine has no bulk-logits path, so this always
        computes logits inline and reports nothing pending.
        """
        return self.run(x), False

    def run(self, x: np.ndarray) -> RunResult:
        """Execute one inference on sample ``x`` and return statistics."""
        atoms = self.runtime.build_atoms()
        if self._validated is not None and self._validated[0] is atoms:
            program_cycles = self._validated[1]
        else:
            validate_program(atoms)
            program_cycles = total_cycles(atoms)
            self._validated = (atoms, program_cycles)
        device = self.device
        supply = device.supply
        meter_start = device.meter.snapshot()
        clock_start = supply.clock_s if supply is not None else 0.0
        charge_start = supply.charge_time_s if supply is not None else 0.0
        commit_on = self.runtime.commit_enabled

        # Observability baselines: event counters are published as
        # *deltas* at run end (never from inside the storm loop), so the
        # simulation arithmetic and operation order are untouched.
        _rec = _obs.ENABLED
        if _rec:
            _failures0 = supply.failures if supply is not None else 0
            _warnings0 = self.monitor.warnings if self.monitor is not None else 0
        n_restores = 0

        durable = _Cursor()
        cursor = _Cursor()
        executed_cycles = 0.0
        reboots = 0
        stall = 0
        last_durable = (-1, -1)
        dnf_reason = ""
        completed = False

        while True:
            try:
                executed_cycles += self._run_from(
                    atoms, cursor, durable, commit_on
                )
                completed = True
                break
            except PowerFailureError:
                reboots += 1
                device.on_power_failure()
                if reboots >= self.max_reboots:
                    dnf_reason = f"exceeded max_reboots={self.max_reboots}"
                    break
                if durable.key() == last_durable:
                    stall += 1
                    if stall >= self.stall_limit:
                        dnf_reason = (
                            f"no durable progress across {stall} power cycles"
                        )
                        break
                else:
                    stall = 0
                last_durable = durable.key()
                try:
                    supply.recharge()
                except InferenceAborted as exc:
                    dnf_reason = str(exc)
                    break
                # Restore: read progress record (and snapshot, if any) back.
                restore = self.runtime.restore_words()
                if restore:
                    try:
                        self._pay_restore(restore + self._volatile_at(atoms, durable))
                    except PowerFailureError:
                        continue  # pathological: failed during restore
                    n_restores += 1
                cursor = _Cursor(durable.atom, durable.iteration)

        diff = device.meter.diff(meter_start)
        logits = None
        pred = None
        if completed:
            logits = self.runtime.compute_logits(x)
            pred = int(np.argmax(logits))
        active = diff.total_time_s
        charge = (supply.charge_time_s - charge_start) if supply is not None else 0.0
        wall = (supply.clock_s - clock_start) if supply is not None else active
        if _rec:
            _obs.count("machine.runs")
            _obs.count("machine.completed" if completed else "machine.dnf")
            if reboots:
                _obs.count("machine.reboots", reboots)
            if n_restores:
                _obs.count("machine.restores", n_restores)
            if supply is not None and supply.failures != _failures0:
                _obs.count("machine.brownouts", supply.failures - _failures0)
            if (self.monitor is not None
                    and self.monitor.warnings != _warnings0):
                _obs.count("machine.checkpoints",
                           self.monitor.warnings - _warnings0)
        return RunResult(
            runtime=self.runtime.name,
            completed=completed,
            logits=logits,
            predicted_class=pred,
            wall_time_s=wall,
            active_time_s=active,
            charge_time_s=charge,
            energy_j=diff.total_energy_j,
            energy_by_component=dict(diff.energy_j),
            checkpoint_energy_j=diff.purpose_of("checkpoint"),
            reboots=reboots,
            executed_cycles=executed_cycles,
            program_cycles=program_cycles,
            dnf_reason=dnf_reason,
        )

    # -- internals --------------------------------------------------------------

    def _run_from(self, atoms, cursor: _Cursor, durable: _Cursor, commit_on: bool) -> float:
        """Execute atoms from ``cursor``; returns cycles executed.

        Mutates ``cursor`` (position) and ``durable`` (resume point).
        Raises :class:`PowerFailureError` on brown-out.
        """
        device = self.device
        supply = device.supply
        executed = 0.0
        while cursor.atom < len(atoms):
            atom = atoms[cursor.atom]
            # FLEX on-demand snapshot before risky work.
            if (
                self.runtime.snapshot_on_warning
                and supply is not None
                and durable.key() < cursor.key()
                and self.monitor is not None
                and self.monitor.is_low()
            ):
                words = self._volatile_at(atoms, cursor) + C.FLEX_COMMIT_WORDS
                device.checkpoint(words)
                durable.atom, durable.iteration = cursor.atom, cursor.iteration

            if atom.divisible:
                executed += self._run_divisible(atom, cursor, durable, commit_on)
            else:
                device.execute(atom)
                executed += atom.cycles
                cursor.atom += 1
                cursor.iteration = 0
                if commit_on and atom.commit:
                    device.checkpoint(atom.commit_words)
                    if atom.volatile_words == 0:
                        durable.atom, durable.iteration = cursor.atom, 0
        return executed

    def _run_divisible(self, atom: Atom, cursor: _Cursor, durable: _Cursor,
                       commit_on: bool) -> float:
        """Execute a loop atom in energy-bounded chunks."""
        device = self.device
        supply = device.supply
        per_iter = 1.0 / atom.iterations
        _, e_iter = device.atom_cost(atom, per_iter)
        if commit_on and atom.commit:
            _, e_commit = device.commit_cost(atom.commit_words)
            e_iter += e_commit
        executed = 0.0
        while cursor.iteration < atom.iterations:
            remaining = atom.iterations - cursor.iteration
            if supply is None:
                chunk = remaining
            else:
                chunk = int(supply.available_energy_j / max(e_iter, 1e-18))
                chunk = max(1, min(chunk, remaining))
            device.execute(atom, chunk * per_iter)
            executed += atom.cycles * chunk * per_iter
            if commit_on and atom.commit:
                self._bulk_commit(atom.commit_words, chunk)
            cursor.iteration += chunk
            if commit_on and atom.commit and atom.volatile_words == 0:
                durable.atom = cursor.atom
                durable.iteration = cursor.iteration
        cursor.atom += 1
        cursor.iteration = 0
        if commit_on and atom.commit and atom.volatile_words == 0:
            durable.atom, durable.iteration = cursor.atom, 0
        return executed

    def _bulk_commit(self, words: int, count: int) -> None:
        """``count`` successive progress commits, booked in one call."""
        self.device.checkpoint_bulk(words, count)

    def _pay_restore(self, words: int) -> None:
        """Read back progress (and any snapshot) after a reboot."""
        self.device.restore(words)

    @staticmethod
    def _volatile_at(atoms, cursor: _Cursor) -> int:
        """Volatile words live at ``cursor`` (state after the previous atom)."""
        if cursor.atom == 0 or cursor.atom > len(atoms):
            return 0
        if cursor.iteration > 0:
            return 0  # mid-loop state is index-resumable by construction
        return atoms[cursor.atom - 1].volatile_words
