"""urllib client for the serve HTTP API (the ``repro submit`` engine).

Mirrors the server's routes one method per route, translating the JSON
error envelope back into the repro exception hierarchy: a 400 becomes
:class:`~repro.errors.ConfigurationError`, a 503
:class:`~repro.errors.ServiceClosedError`, a failed job
:class:`~repro.errors.JobFailedError` — so driving a remote service
raises exactly what calling :class:`~repro.serve.service.StudyService`
in-process would.

Tables cross the wire as :meth:`ResultTable.to_json` and are decoded
with :meth:`ResultTable.from_json`, inheriting the lossless round-trip
contract: the table a client holds is bit-identical to the one the
service computed.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.errors import (
    ConfigurationError,
    JobFailedError,
    ReproError,
    ServiceClosedError,
)
from repro.faults.retry import RetryPolicy
from repro.study.table import ResultTable

#: error "type" field -> exception class raised client-side.
_ERROR_TYPES = {
    "ConfigurationError": ConfigurationError,
    "ServiceClosedError": ServiceClosedError,
    "JobFailedError": JobFailedError,
}

#: Transient server-side statuses worth retrying on idempotent requests.
_RETRYABLE_STATUS = (502, 503, 504)


def _refused(exc: urllib.error.URLError) -> bool:
    return isinstance(getattr(exc, "reason", None), ConnectionRefusedError)


class ServeClient:
    """A client bound to one service base URL (``http://host:port``).

    Two recovery behaviors, both bounded and deterministic:

    * **Startup race** — connection-refused is retried for up to
      ``connect_wait_s`` on *any* method (nothing reached the server,
      so resending is always safe).  ``repro submit`` racing a
      just-launched ``repro serve --port 0`` wins cleanly.
    * **Idempotent GETs** — 502/503/504 responses and connection drops
      retry under ``retry`` with backoff; non-idempotent requests never
      retry past the connect phase.  The final failure propagates
      exactly as it would without retries.
    """

    def __init__(
        self, base_url: str, *, timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None, connect_wait_s: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.connect_wait_s = connect_wait_s

    # -- transport ------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None,
        *, timeout_s: Optional[float] = None,
    ) -> bytes:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        idempotent = method == "GET"
        connect_deadline = time.monotonic() + self.connect_wait_s
        attempt = 0
        while True:
            req = urllib.request.Request(
                self.base_url + path, data=data, headers=headers,
                method=method,
            )
            try:
                with urllib.request.urlopen(
                    req, timeout=timeout_s or self.timeout_s
                ) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                if (idempotent and exc.code in _RETRYABLE_STATUS
                        and attempt + 1 < self.retry.max_attempts):
                    exc.read()
                    attempt += 1
                    self.retry.sleep(attempt)
                    continue
                raise self._to_error(exc)
            except urllib.error.URLError as exc:
                if _refused(exc) and time.monotonic() < connect_deadline:
                    time.sleep(0.05)
                    continue
                if idempotent and attempt + 1 < self.retry.max_attempts:
                    attempt += 1
                    self.retry.sleep(attempt)
                    continue
                raise

    @staticmethod
    def _to_error(exc: urllib.error.HTTPError) -> ReproError:
        try:
            envelope = json.loads(exc.read().decode("utf-8"))
        except ValueError:
            envelope = {}
        message = envelope.get("error") or f"HTTP {exc.code}"
        cls = _ERROR_TYPES.get(envelope.get("type"), ReproError)
        if cls is JobFailedError:
            return JobFailedError(envelope.get("id", "?"), message)
        return cls(message)

    def _json(self, method: str, path: str, payload=None, **kw) -> dict:
        return json.loads(self._request(method, path, payload, **kw))

    # -- API ------------------------------------------------------------------

    def submit(self, spec) -> dict:
        """POST one job; ``spec`` is a JobSpec or its dict form.

        Returns the job resource (``id``, ``state``, ``dedup`` ...).
        """
        payload = spec if isinstance(spec, dict) else spec.to_dict()
        return self._json("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._json("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def result_json(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> bytes:
        """The finished table's exact ``to_json`` bytes (see module doc)."""
        path = f"/jobs/{job_id}/result"
        if timeout is not None:
            path += f"?timeout={timeout}"
        # HTTP timeout must outlast the server-side wait.
        http_timeout = self.timeout_s + (timeout or 0)
        return self._request("GET", path, timeout_s=http_timeout)

    def result(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> ResultTable:
        """The finished table, decoded (lossless round trip)."""
        return ResultTable.from_json(
            self.result_json(job_id, timeout=timeout).decode("utf-8")
        )

    def wait(self, job_id: str, *, timeout: Optional[float] = None) -> dict:
        """Poll until the job is terminal; returns the final resource."""
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = 0.02
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise ConfigurationError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(delay)
            delay = min(delay * 2, 0.5)

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")
