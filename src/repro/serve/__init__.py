"""Concurrent study service: job queue, dedup, and an HTTP front end.

The studies layer made every experiment a one-call function
(:func:`~repro.study.core.run_study`); the store made results durable
and content-addressed; this package makes them *servable*: a
long-lived process that accepts study jobs concurrently, coalesces
duplicates onto one execution, and hands every caller a bit-identical
:class:`~repro.study.table.ResultTable`.

Layers, bottom up:

* :mod:`repro.serve.queue` — :class:`JobSpec` (validated at submit
  time), :class:`Job` (the lifecycle record), :class:`JobQueue`
  (bounded FIFO workers + in-flight dedup on the store's content keys,
  with *exact* lifecycle counters);
* :mod:`repro.serve.service` — :class:`StudyService`: the queue wired
  to one shared :class:`~repro.fleet.cache.ModelCache`, an optional
  durable :class:`~repro.store.cache.ResultStore`, and a finished-table
  LRU; timeouts, cancellation, graceful draining shutdown;
* :mod:`repro.serve.http` — a stdlib-only JSON API
  (``POST /jobs`` ... ``GET /metrics``) over ``ThreadingHTTPServer``;
* :mod:`repro.serve.client` — the urllib client the ``repro submit``
  CLI drives.

The one-process quickstart::

    from repro.serve import JobSpec, StudyService

    with StudyService(workers=4) as svc:
        a = svc.submit(JobSpec("fig8", engine="fast"))
        b = svc.submit(JobSpec("fig8", engine="fast"))   # dedup hit
        table = svc.result(a.id)
        assert svc.result(b.id) is table

Or over HTTP: ``repro serve --port 8321`` in one terminal,
``repro submit fig8 --engine fast --url http://127.0.0.1:8321`` in
another.
"""

from repro.serve.client import ServeClient
from repro.serve.http import ServiceHTTPServer, serve_http
from repro.serve.queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    Job,
    JobQueue,
    JobSpec,
)
from repro.serve.service import StudyService

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "STATES",
    "Job",
    "JobQueue",
    "JobSpec",
    "ServeClient",
    "ServiceHTTPServer",
    "StudyService",
    "serve_http",
]
