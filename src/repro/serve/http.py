"""Stdlib-only JSON/HTTP front end for :class:`StudyService`.

Built on ``http.server.ThreadingHTTPServer`` — no framework, no new
dependencies — because the API is small and the hard part (dedup,
concurrency, bit-identity) lives below it in :mod:`repro.serve`:

======  ======================  ==========================================
verb    path                    body / response
======  ======================  ==========================================
POST    /jobs                   :meth:`JobSpec.to_dict` JSON in; job
                                resource out (``202``)
GET     /jobs                   every job resource, submission order
GET     /jobs/<id>              one job resource (``404`` unknown)
GET     /jobs/<id>/result       the finished table as lossless
                                :meth:`ResultTable.to_json` (``409`` if
                                not finished; ``?timeout=S`` waits)
DELETE  /jobs/<id>              cancel (``409`` if already running)
GET     /healthz                liveness, queue depth, workers alive,
                                retry + exact queue counters
GET     /metrics                :mod:`repro.obs` snapshot JSON
======  ======================  ==========================================

Error responses are JSON ``{"error": ..., "type": ...}`` with the repro
exception class name, so clients can distinguish a bad spec (400) from
a closed service (503) from an execution failure (500) without parsing
prose.  The result endpoint streams the *exact* ``to_json`` bytes —
two clients fetching a deduped job get byte-equal payloads.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError, ReproError, ServiceClosedError
from repro.faults import inject as _inject
from repro.serve.queue import CANCELLED, DONE, FAILED, JobSpec
from repro.serve.service import StudyService

#: Cap on ?timeout= waits so a client cannot pin a server thread forever.
MAX_WAIT_S = 300.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """One HTTP listener bound to one :class:`StudyService`."""

    daemon_threads = True

    def __init__(self, service: StudyService, address: Tuple[str, int]):
        self.service = service
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


class _Handler(BaseHTTPRequestHandler):
    # Quiet by default; the CLI flips this for interactive serving.
    log_to_stderr = False
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        if self.log_to_stderr:
            super().log_message(fmt, *args)

    @property
    def service(self) -> StudyService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------------

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_bytes(status, body)

    def _send_bytes(
        self, status: int, body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: Exception) -> None:
        self._send_json(
            status, {"error": str(exc), "type": type(exc).__name__}
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigurationError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ConfigurationError(f"bad JSON body: {exc}")

    # -- routes ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        if path != "/jobs":
            self._send_json(404, {"error": f"no such route: POST {path}"})
            return
        try:
            spec = JobSpec.from_dict(self._read_body())
            job = self.service.submit(spec)
        except ServiceClosedError as exc:
            self._send_error_json(503, exc)
            return
        except ReproError as exc:
            self._send_error_json(400, exc)
            return
        self._send_json(202, job.to_dict())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        if _inject.ENABLED:
            # The serve.http fault site: GET-only (idempotent), so the
            # client's bounded retry-with-backoff is always safe.
            try:
                _inject.fire("serve.http", path=None, route=parsed.path)
            except _inject.FaultInjected as exc:
                self._send_json(
                    503, {"error": str(exc), "type": "TransientError"}
                )
                return
        parts = [p for p in parsed.path.split("/") if p]
        if parsed.path == "/healthz":
            self._send_json(200, self.service.health())
        elif parsed.path == "/metrics":
            self._send_json(200, self.service.metrics())
        elif parsed.path == "/jobs":
            self._send_json(
                200, {"jobs": [j.to_dict() for j in self.service.jobs()]}
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            try:
                job = self.service.job(parts[1])
            except ConfigurationError as exc:
                self._send_error_json(404, exc)
                return
            self._send_json(200, job.to_dict())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._get_result(parts[1], parsed.query)
        else:
            self._send_json(
                404, {"error": f"no such route: GET {parsed.path}"}
            )

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._send_json(404, {"error": "no such route"})
            return
        try:
            job = self.service.job(parts[1])
        except ConfigurationError as exc:
            self._send_error_json(404, exc)
            return
        if self.service.cancel(job.id):
            self._send_json(200, job.to_dict())
        else:
            self._send_json(
                409,
                {"error": f"job {job.id} is {job.state}; too late to cancel",
                 "type": "ConfigurationError"},
            )

    def _get_result(self, job_id: str, query: str) -> None:
        try:
            job = self.service.job(job_id)
        except ConfigurationError as exc:
            self._send_error_json(404, exc)
            return
        wait_s: Optional[float] = None
        params = parse_qs(query)
        if "timeout" in params:
            try:
                wait_s = min(float(params["timeout"][0]), MAX_WAIT_S)
            except ValueError:
                self._send_json(400, {"error": "timeout must be a number"})
                return
        if wait_s is not None:
            job.wait(wait_s)
        if job.state == DONE:
            self._send_bytes(200, job.table.to_json().encode("utf-8"))
        elif job.state == FAILED:
            self._send_json(
                500,
                {"error": job.error, "type": "JobFailedError", "id": job.id},
            )
        elif job.state == CANCELLED:
            self._send_json(
                410,
                {"error": f"job {job.id} was cancelled",
                 "type": "JobFailedError", "id": job.id},
            )
        else:
            self._send_json(
                409,
                {"error": f"job {job.id} is {job.state}; result not ready",
                 "type": "ConfigurationError", "id": job.id,
                 "state": job.state},
            )


def serve_http(
    service: StudyService, host: str = "127.0.0.1", port: int = 0,
    *, log: bool = False,
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` = ephemeral) and serve on a thread.

    Returns the running server; call ``.shutdown()`` then
    ``service.close()`` to stop.  The serving thread is a daemon, so an
    exiting process never hangs on it.
    """
    server = ServiceHTTPServer(service, (host, port))
    _Handler.log_to_stderr = log
    thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    return server
