"""The study service: concurrent ``run_study`` over shared caches.

:class:`StudyService` glues the dedup queue to the execution stack:

* one shared :class:`~repro.fleet.cache.ModelCache` across every job,
  so concurrent fleet-executed studies prepare each distinct model once
  (the cache's per-key build locks make racing first requests build
  exactly once, and its per-key *execution* locks keep two jobs from
  running scenarios on the same cached model at the same time);
* one optional :class:`~repro.store.cache.ResultStore`, giving jobs
  durable per-scenario resume and a finished-table archive — a service
  restarted over the same store serves archived tables without
  executing anything;
* an in-memory LRU of finished tables keyed by the same content
  address the store uses, which is what makes *resubmitting* a
  completed spec a dedup hit rather than a rerun.

Execution is plain :func:`~repro.study.core.run_study` on a worker
thread — the same function the CLI and tests call — so a table served
concurrently is bit-identical to a serial run of the same spec.  Jobs
with ``timeout_s`` run on a helper thread; on expiry the job fails
with a captured timeout traceback and the abandoned execution's result
is discarded (never cached, never published).

Shutdown (:meth:`close`) stops intake (further submits raise
:class:`~repro.errors.ServiceClosedError`), drains or cancels the
queue, and flushes the store — completed work is durable before
``close`` returns.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, JobFailedError
from repro.faults import inject as _inject
from repro.faults.retry import RetryPolicy
from repro.fleet.cache import ModelCache
from repro.obs import metrics as _obs
from repro.serve.queue import DONE, FAILED, Job, JobQueue, JobSpec
from repro.study.table import ResultTable


class StudyService:
    """Concurrent study executor with dedup (see module docstring).

    ``workers`` bounds concurrent executions (each may itself fan out a
    fleet pool — size the two levels together).  ``store`` attaches a
    durable :class:`~repro.store.cache.ResultStore`; ``table_cache``
    bounds the in-memory finished-table LRU (0 disables it, leaving
    only in-flight coalescing and the store's archive).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        store=None,
        table_cache: int = 64,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if table_cache < 0:
            raise ConfigurationError("table_cache must be >= 0")
        self.store = store
        self.model_cache = ModelCache()
        self._table_cache_size = table_cache
        #: Per-job bounded retry on transient failures (worker-lost,
        #: timeout, injected faults).  Other exceptions — bad studies,
        #: real bugs — still fail the job on the first attempt.
        self.retry = retry if retry is not None else RetryPolicy()
        #: key -> finished ResultTable; touched only under the queue
        #: lock (the lookup/publish callbacks run with it held).
        self._tables: "OrderedDict[str, ResultTable]" = OrderedDict()
        self.queue = JobQueue(
            self._execute,
            workers=workers,
            lookup=self._cache_lookup,
            publish=self._cache_publish,
            retry=self.retry,
        )

    # -- public API -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Validate and enqueue one job (see :meth:`JobQueue.submit`)."""
        return self.queue.submit(spec)

    def job(self, job_id: str) -> Job:
        return self.queue.job(job_id)

    def jobs(self) -> List[Job]:
        return self.queue.jobs()

    def cancel(self, job_id: str) -> bool:
        return self.queue.cancel(job_id)

    def result(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> ResultTable:
        """The finished table for ``job_id``, waiting for it if needed.

        Raises :class:`~repro.errors.JobFailedError` for failed or
        cancelled jobs (carrying the captured traceback), and
        :class:`~repro.errors.ConfigurationError` when the wait times
        out — the job itself keeps running.
        """
        job = self.queue.job(job_id)
        if not job.wait(timeout):
            raise ConfigurationError(
                f"job {job_id} still {job.state} after {timeout}s"
            )
        if job.state == DONE:
            return job.table
        if job.state == FAILED:
            raise JobFailedError(job_id, job.error or "unknown failure")
        raise JobFailedError(job_id, "job was cancelled")

    def run(self, spec: JobSpec, *, timeout: Optional[float] = None):
        """Submit and wait: the blocking one-call convenience."""
        return self.result(self.submit(spec).id, timeout=timeout)

    def counters(self) -> dict:
        return self.queue.counters()

    def health(self) -> dict:
        """The ``/healthz`` payload: liveness, depth, workers, retries."""
        counters = self.queue.counters()
        return {
            "ok": True,
            "counters": counters,
            "queue_depth": counters["queued"],
            "inflight": counters["inflight"],
            "workers": self.queue.worker_count,
            "workers_alive": self.queue.workers_alive(),
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "retried": counters["retried"],
            },
        }

    def metrics(self) -> dict:
        """A :mod:`repro.obs` snapshot (schema-valid even when off)."""
        return _obs.snapshot()

    def close(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop intake, drain (or cancel) the queue, flush the store."""
        self.queue.close(drain=drain, timeout=timeout)
        if self.store is not None:
            self.store.flush()

    def __enter__(self) -> "StudyService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queue callbacks (run under the queue lock) ---------------------------

    def _cache_lookup(self, key: str) -> Optional[ResultTable]:
        table = self._tables.get(key)
        if table is not None:
            self._tables.move_to_end(key)
        return table

    def _cache_publish(self, key: str, table: ResultTable) -> None:
        if self._table_cache_size == 0:
            return
        self._tables[key] = table
        self._tables.move_to_end(key)
        while len(self._tables) > self._table_cache_size:
            self._tables.popitem(last=False)

    # -- execution (worker threads) -------------------------------------------

    def _run_study(self, job: Job) -> Tuple[ResultTable, bool, bool]:
        from repro.study.core import run_study

        if _inject.ENABLED:
            # The serve.execute fault site: an exception kind here makes
            # the attempt fail transiently (and get retried); a crash
            # kind kills this worker's whole process — the chaos tests
            # run that variant in a subprocess.
            _inject.fire("serve.execute", job=job.id, study=job.spec.study)
        spec = job.spec
        kwargs = dict(
            engine=spec.engine,
            profile=spec.profile,
            store=self.store,
        )
        from repro.study.core import get_study

        if get_study(spec.study).fleet_executed:
            # Execution options only exist for fleet-executed studies
            # (check_study_options rejected them otherwise).
            kwargs.update(
                workers=spec.workers,
                parallel=spec.parallel,
                on_error=spec.on_error,
                cache=self.model_cache,
            )
        run = run_study(spec.study, **kwargs)
        failures = run.report.failures if run.report is not None else 0
        # A table carrying recorded failures (on_error="record") must
        # not be served to later submitters as the study's answer.
        cacheable = failures == 0
        return run.table, run.from_table_cache, cacheable

    def _execute(self, job: Job) -> Tuple[ResultTable, bool, bool]:
        spec = job.spec
        if spec.timeout_s is None:
            return self._run_study(job)
        outcome: dict = {}

        def _target() -> None:
            try:
                outcome["value"] = self._run_study(job)
            except BaseException as exc:  # delivered to the waiter below
                outcome["error"] = exc

        helper = threading.Thread(
            target=_target, name=f"{job.id}-exec", daemon=True
        )
        helper.start()
        helper.join(spec.timeout_s)
        if helper.is_alive():
            # The execution is abandoned (threads are not preemptible);
            # its eventual result lands in `outcome` and is discarded —
            # in particular it is never published to the table cache.
            if _obs.ENABLED:
                _obs.count("serve.jobs_timed_out")
            raise TimeoutError(
                f"job {job.id} ({spec.study}) exceeded its "
                f"{spec.timeout_s}s timeout"
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]
