"""Job specs, job records, and the deduplicating FIFO queue.

A :class:`JobSpec` is the frozen request shape of the service: one
:func:`~repro.study.core.run_study` call (study, engine, profile,
execution options) validated *at submit time* through
:func:`~repro.study.core.check_study_options`, so a bad request fails
the submission synchronously instead of occupying a worker.

:class:`JobQueue` runs specs through a bounded pool of worker threads
in FIFO order, with **in-flight dedup**: a submission whose content
address (:func:`~repro.store.cache.study_table_key` over study +
profile + engine + code version — the same key the durable store
archives finished tables under) matches a queued or running job
*coalesces* onto that execution.  Both submitters get their own
:class:`Job` record and job id, but exactly one ``run_study`` happens,
and both jobs complete with the *same* table object — bit-identical by
construction, not by luck.  A completed-table cache (supplied by the
service as ``lookup``/``publish`` callbacks) extends the same
guarantee past completion: resubmitting a finished spec is a hit, not
a rerun.

Counting contract: every ``serve.*`` counter is incremented under the
queue lock, so — unlike the lock-free cache hit counters elsewhere —
they are *exact*, and tests assert them exactly:

    ``dedup_hits == submissions - distinct executions``

regardless of thread timing, because a submission either starts a new
execution or is a dedup hit (in-flight coalesce or completed-cache
hit), never both, decided atomically under the lock.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ServiceClosedError
from repro.faults.retry import RetryPolicy, is_transient
from repro.obs import metrics as _obs
from repro.study.core import Profile, check_study_options

#: Job lifecycle states (see :class:`Job`).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
#: States a job can never leave.
TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One requested ``run_study`` call, validated on construction.

    ``timeout_s`` bounds the execution wall clock (``None`` = no bound);
    a job that exceeds it fails with a captured timeout traceback.  The
    spec is hashable/frozen so it can travel through HTTP JSON and back
    without losing identity.
    """

    study: str
    engine: str = "reference"
    workers: Optional[int] = None
    parallel: bool = True
    profile: Profile = field(default_factory=Profile)
    on_error: str = "raise"
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive (or None)")
        check_study_options(
            self.study, engine=self.engine, workers=self.workers,
            parallel=self.parallel, profile=self.profile,
            on_error=self.on_error,
        )

    def dedup_key(self) -> str:
        """Content address of this spec's finished table.

        Exactly :func:`~repro.store.cache.study_table_key`: the key the
        durable store archives the table under, so in-flight dedup, the
        service's memory cache, and the on-disk archive all agree on
        what "the same job" means.  Execution options (``workers``,
        ``parallel``, ``timeout_s``, ``on_error``) are excluded — they
        cannot change a single output bit (the fleet determinism
        contract), so two submissions differing only there still share
        one execution.
        """
        from repro.store.cache import study_table_key

        return study_table_key(self.study, self.profile, self.engine)

    def to_dict(self) -> dict:
        import dataclasses

        payload = dataclasses.asdict(self)
        payload["profile"] = {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in payload["profile"].items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ConfigurationError("job spec must be a JSON object")
        known = {
            "study", "engine", "workers", "parallel", "profile",
            "on_error", "timeout_s",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}"
            )
        if "study" not in payload:
            raise ConfigurationError("job spec needs a 'study'")
        kwargs = dict(payload)
        prof = kwargs.pop("profile", None) or {}
        if not isinstance(prof, dict):
            raise ConfigurationError("profile must be a JSON object")
        prof_known = {"tasks", "seed", "full", "samples", "corpus"}
        prof_unknown = set(prof) - prof_known
        if prof_unknown:
            raise ConfigurationError(
                f"unknown profile field(s): {', '.join(sorted(prof_unknown))}"
            )
        for name in ("tasks", "corpus"):
            if prof.get(name) is not None:
                prof[name] = tuple(prof[name])
        try:
            kwargs["profile"] = Profile(**prof)
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"bad job spec: {exc}")


class Job:
    """One submission's view of its execution (see module docstring).

    State machine::

        queued ──> running ──> done
           │           │
           │           ├─────> failed     (exception or timeout,
           │           │                   traceback captured)
           └─────────────────> cancelled  (queued jobs only)

    A *coalesced* job (``coalesced_into`` set) never enters ``running``
    itself — it completes when its primary's execution does.
    ``from_cache`` marks completions that executed nothing: a
    completed-table cache hit, an in-flight coalesce, or a ``run_study``
    short-circuit out of the durable store's archive.
    """

    def __init__(self, job_id: str, spec: JobSpec, key: str) -> None:
        self.id = job_id
        self.spec = spec
        self.key = key
        self.state = QUEUED
        self.table = None  # ResultTable once done
        self.error: Optional[str] = None
        self.from_cache = False
        self.coalesced_into: Optional[str] = None
        self.created_s = time.time()
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        #: Failed execution attempts re-queued by the retry policy
        #: (primary jobs only; attached jobs ride their primary's).
        self.attempts = 0
        #: Jobs coalesced onto this one (primary jobs only).
        self.attached: List["Job"] = []
        self._done = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL

    def to_dict(self) -> dict:
        """JSON-shaped summary (the HTTP API's job resource)."""
        return {
            "id": self.id,
            "study": self.spec.study,
            "engine": self.spec.engine,
            "key": self.key,
            "state": self.state,
            "error": self.error,
            "dedup": bool(self.from_cache or self.coalesced_into),
            "from_cache": self.from_cache,
            "coalesced_into": self.coalesced_into,
            "attempts": self.attempts,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }


class JobQueue:
    """Bounded-worker FIFO with in-flight dedup (see module docstring).

    ``executor(job) -> (table, from_cache, cacheable)`` runs one job to
    completion (outside the queue lock); ``lookup(key)``/``publish(key,
    table)`` are the completed-table cache callbacks, always invoked
    *under* the queue lock so the hit/coalesce/execute decision is
    atomic and the publish-then-detach ordering leaves no window where
    a duplicate could slip past both the cache and the in-flight table.
    """

    def __init__(
        self,
        executor: Callable[[Job], Tuple[object, bool, bool]],
        *,
        workers: int = 2,
        lookup: Optional[Callable[[str], object]] = None,
        publish: Optional[Callable[[str, object], None]] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self._executor = executor
        self._lookup = lookup
        self._publish = publish
        # Per-job bounded retry on transient failures (worker-lost,
        # timeout, injected faults — see repro.faults.retry.is_transient).
        # None disables retries entirely.
        self._retry = retry
        # Plain (not fork-safe) lock: fleet pool children never touch
        # the queue, so fork inheritance is moot here.
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: Deque[Job] = deque()
        self._inflight: Dict[str, Job] = {}
        self._jobs: Dict[str, Job] = {}
        self._closed = False
        self._seq = 0
        # Exact counters (every increment happens under the lock).
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.dedup_hits = 0
        self.executions = 0
        self.retried = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission / inspection ---------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue one spec; returns immediately with this caller's job.

        The returned job may already be ``done`` (completed-table cache
        hit) or coalesced onto an in-flight execution — both count as
        dedup hits.  Raises :class:`~repro.errors.ServiceClosedError`
        once :meth:`close` has begun.
        """
        key = spec.dedup_key()
        with self._cond:
            if self._closed:
                raise ServiceClosedError(
                    "service is shutting down; job not accepted"
                )
            self._seq += 1
            job = Job(f"job-{self._seq:06d}", spec, key)
            self._jobs[job.id] = job
            self.submitted += 1
            if _obs.ENABLED:
                _obs.count("serve.jobs_submitted")
            cached = self._lookup(key) if self._lookup is not None else None
            if cached is not None:
                job.table = cached
                job.from_cache = True
                self._finish(job, DONE)
                self.dedup_hits += 1
                if _obs.ENABLED:
                    _obs.count("serve.dedup_hits")
                return job
            primary = self._inflight.get(key)
            if primary is not None:
                job.coalesced_into = primary.id
                primary.attached.append(job)
                self.dedup_hits += 1
                if _obs.ENABLED:
                    _obs.count("serve.dedup_hits")
                return job
            self._inflight[key] = job
            self._queue.append(job)
            self._cond.notify()
            return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigurationError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        """All jobs, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def counters(self) -> dict:
        """Exact lifecycle counters (one consistent snapshot)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "dedup_hits": self.dedup_hits,
                "executions": self.executions,
                "retried": self.retried,
                "queued": len(self._queue),
                "inflight": len(self._inflight),
            }

    def workers_alive(self) -> int:
        """Worker threads currently alive (all of them, in health)."""
        return sum(1 for t in self._threads if t.is_alive())

    @property
    def worker_count(self) -> int:
        return len(self._threads)

    # -- cancellation / shutdown ---------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel one submission if it has not started executing.

        Only ``queued`` (or coalesced-but-pending) jobs can be
        cancelled; a cancelled job never runs *for this submitter* —
        if other submissions coalesced onto the same execution, the
        execution still happens for them.  Returns True when the job
        was cancelled, False when it was already running or finished.
        """
        job = self.job(job_id)
        with self._cond:
            if job.state != QUEUED:
                return False
            self._finish(job, CANCELLED)
            # A cancelled primary stays in the deque; the worker skips
            # the execution iff every coalesced submission is cancelled
            # too (checked at pop time).
            return True

    def close(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop accepting jobs, then stop the workers.

        ``drain=True`` (the default) waits for every queued and running
        job to finish first; ``drain=False`` cancels everything still
        queued (running jobs always finish — executions are not
        preemptible).  Idempotent.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._closed = True
            if not drain:
                for job in list(self._queue):
                    if job.state == QUEUED:
                        self._finish(job, CANCELLED)
            # Wake every worker: cancelled entries still sit in the
            # deque until a worker pops (and drops) them, and the wait
            # loop below needs that drain to make progress.
            self._cond.notify_all()
            while self._queue or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(remaining)
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=timeout)

    # -- worker side ----------------------------------------------------------

    def _finish(self, job: Job, state: str) -> None:
        # Caller holds the lock.
        job.state = state
        job.finished_s = time.time()
        if state == DONE:
            self.completed += 1
            if _obs.ENABLED:
                _obs.count("serve.jobs_completed")
        elif state == FAILED:
            self.failed += 1
            if _obs.ENABLED:
                _obs.count("serve.jobs_failed")
        elif state == CANCELLED:
            self.cancelled += 1
            if _obs.ENABLED:
                _obs.count("serve.jobs_cancelled")
        job._done.set()

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue:
                    if self._closed:
                        return
                    self._cond.wait()
                job = self._queue.popleft()
                live = [
                    j for j in (job, *job.attached) if j.state != CANCELLED
                ]
                if not live:
                    # Every submission for this key was cancelled
                    # before a worker got to it: drop the execution.
                    self._inflight.pop(job.key, None)
                    self._cond.notify_all()
                    continue
                for j in live:
                    j.state = RUNNING
                    j.started_s = time.time()
                if job.attempts == 0:
                    # Retried attempts are not new executions: the
                    # counting contract (dedup_hits == submissions -
                    # distinct executions) counts specs, not tries.
                    self.executions += 1
                    if _obs.ENABLED:
                        _obs.count("serve.executions")
                        _obs.observe_ns(
                            "serve.queue_wait",
                            int((job.started_s - job.created_s) * 1e9),
                        )
            table = None
            error: Optional[str] = None
            exc_obj: Optional[BaseException] = None
            from_cache = False
            cacheable = False
            try:
                with _obs_span("serve.execute", job):
                    table, from_cache, cacheable = self._executor(job)
            except Exception as exc:
                error = traceback.format_exc()
                exc_obj = exc
            if exc_obj is not None and self._retryable(job, exc_obj):
                self._requeue(job)
                continue
            with self._cond:
                # publish-before-detach: a duplicate submitted in this
                # window must find either the in-flight entry or the
                # completed-table cache — never neither.
                if error is None and cacheable and self._publish is not None:
                    self._publish(job.key, table)
                # Coalesces that raced in while the job ran.
                live = [
                    j for j in (job, *job.attached) if j.state != CANCELLED
                ]
                for j in live:
                    if error is None:
                        j.table = table
                        j.from_cache = from_cache or j.coalesced_into is not None
                        self._finish(j, DONE)
                    else:
                        j.error = error
                        self._finish(j, FAILED)
                self._inflight.pop(job.key, None)
                self._cond.notify_all()

    def _retryable(self, job: Job, exc: BaseException) -> bool:
        return (
            self._retry is not None
            and is_transient(exc)
            and job.attempts + 1 < self._retry.max_attempts
        )

    def _requeue(self, job: Job) -> None:
        """Send a transiently failed job around again (worker thread).

        The job (and every attached duplicate) goes back to ``queued``
        but *stays in the in-flight table* through the backoff, so
        submissions racing in keep coalescing onto the retrying
        execution — the dedup key never changes and duplicate jobs ride
        the retry to whatever outcome it reaches.
        """
        with self._cond:
            job.attempts += 1
            self.retried += 1
            if _obs.ENABLED:
                _obs.count("serve.jobs_retried")
            for j in (job, *job.attached):
                if j.state == RUNNING:
                    j.state = QUEUED
        # Backoff outside the lock (deterministic, bounded); then hand
        # the job back to the deque for any worker — including this one.
        self._retry.sleep(job.attempts)
        with self._cond:
            self._queue.append(job)
            self._cond.notify()


def _obs_span(name: str, job: Job):
    from repro.obs import spans as _spans

    return _spans.span(name, job=job.id, study=job.spec.study)
