"""Fleet execution: many independent sensing sessions, optionally parallel.

Each scenario is an isolated simulation — its own device, supply, runtime
instance, and sample stream — so a fleet is embarrassingly parallel.
:class:`FleetRunner` exploits that with a ``multiprocessing`` pool:

1. the parent resolves every distinct :attr:`Scenario.model_key` through a
   :class:`~repro.fleet.cache.ModelCache` (N scenarios pay for U <= N
   model preparations, not N);
2. the prepared models are shipped to each worker once, via the pool
   initializer (not once per task);
3. workers execute scenarios with :func:`execute_scenario` — the *same*
   function the serial path uses — so parallel results are bit-identical
   to serial results for the same specs.

Execution is *streaming*: results come back through ``imap_unordered``
and are committed one at a time — to a durable
:class:`~repro.store.cache.ResultStore` when one is attached — then
reassembled into input order at the end.  A scenario that raises is
captured in its worker and returned as a DNF-style failure record
carrying the scenario name; ``on_error="record"`` keeps the fleet
running with the failure as an error row, ``on_error="raise"`` (the
default) stops at the first failure with a
:class:`~repro.errors.ScenarioExecutionError` — but either way the
results committed before it are already safe in the store.

Determinism holds because every source of randomness is seeded from the
scenario itself (dataset stream from ``seed``, model from ``model_seed``,
stochastic traces from ``trace.seed``) and the simulator is pure
floating-point arithmetic with no wall-clock or cross-scenario coupling.
That same determinism is what makes durable results *cacheable*: a
result replayed from a store is bit-identical to re-simulating it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ScenarioExecutionError
from repro.fleet.cache import ModelCache
from repro.fleet.report import FleetReport, ScenarioResult
from repro.fleet.scenario import Scenario
from repro.obs import metrics as _obs
from repro.obs import spans as _spans
from repro.obs.snapshot import merge_all
from repro.rad.quantize import QuantizedModel

#: Accepted failure policies (see :meth:`FleetRunner.run`).
ON_ERROR = ("raise", "record")


def execute_scenario(
    scenario: Scenario, qmodel: QuantizedModel, engine: str = "reference"
) -> ScenarioResult:
    """Run one scenario end to end and return its result record.

    Used verbatim by the serial path and by pool workers, which is what
    makes the two execution modes produce identical results.  ``engine``
    selects the simulation engine (``"reference"`` or ``"fast"``; see
    :mod:`repro.sim.fastsim` — results are bit-identical either way).
    """
    from repro.experiments.common import make_dataset, make_runtime
    from repro.hw.board import msp430fr5994
    from repro.power import VoltageMonitor
    from repro.sim.session import SensingSession

    harvester = scenario.build_harvester()  # None for mains scenarios
    device = msp430fr5994(supply=harvester)
    runtime = make_runtime(scenario.runtime, qmodel)
    monitor = None
    if runtime.snapshot_on_warning and harvester is not None:
        if scenario.v_warn is None:
            monitor = VoltageMonitor(harvester)
        else:
            monitor = VoltageMonitor(harvester, v_warn=scenario.v_warn)
    session = SensingSession(
        device,
        runtime,
        monitor=monitor,
        stall_limit=scenario.stall_limit,
        give_up_after_dnf=scenario.give_up_after_dnf,
        engine=engine,
    )
    ds = make_dataset(scenario.task, max(scenario.n_samples, 16),
                      seed=scenario.seed)
    # The cached model is shared across scenarios (and, serially, across
    # this whole run); its overflow monitor is per-scenario scratch.
    # Reset it here and snapshot the count into the result so overflow
    # statistics are scenario-scoped in both execution modes.
    qmodel.monitor.reset()
    stats = session.run(ds.x[: scenario.n_samples])
    labels = tuple(int(y) for y in ds.y[: len(stats.results)])
    return ScenarioResult(scenario=scenario, stats=stats, labels=labels,
                          overflow_events=qmodel.monitor.total)


def _failure_result(scenario: Scenario, exc: BaseException) -> ScenarioResult:
    """A DNF-style error record for a scenario whose execution raised."""
    from repro.sim.session import SessionStats

    summary = "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()
    return ScenarioResult(
        scenario=scenario,
        stats=SessionStats(runtime=scenario.runtime, results=[]),
        labels=(),
        error=summary,
    )


def _execute_captured(
    scenario: Scenario, qmodel: QuantizedModel, engine: str
) -> ScenarioResult:
    """``execute_scenario`` with exceptions folded into a failure record.

    Only :class:`Exception` is captured — ``KeyboardInterrupt`` and
    friends still abort the run.  The record (not a raised exception) is
    what crosses the process boundary, so a broken cell never tears down
    the pool mid-map, and the failure always names its scenario.
    """
    try:
        with _spans.span("fleet.scenario", scenario=scenario.name,
                         runtime=scenario.runtime):
            result = execute_scenario(scenario, qmodel, engine=engine)
        if _obs.ENABLED:
            _obs.count("fleet.scenarios")
        return result
    except Exception as exc:
        if _obs.ENABLED:
            _obs.count("fleet.scenarios_failed")
        return _failure_result(scenario, exc)


# -- worker-process plumbing --------------------------------------------------
#
# Pool workers receive the prepared models once (initializer) and look
# them up per scenario; both functions must be module-level picklables.

_WORKER_MODELS: Dict[Tuple, QuantizedModel] = {}
_WORKER_ENGINE = "reference"


def _init_worker(
    models: Dict[Tuple, QuantizedModel],
    engine: str = "reference",
    obs_on: bool = False,
) -> None:
    global _WORKER_ENGINE
    _WORKER_MODELS.clear()
    _WORKER_MODELS.update(models)
    _WORKER_ENGINE = engine
    # A forked worker inherits the parent's metric state; reset it so the
    # snapshots it ships back count only its own work (the parent absorbs
    # them on top of its own registry — no double counting).
    _obs.reset_metrics()
    _spans.clear()
    if obs_on:
        _obs.enable()
    else:
        _obs.disable()


def _run_in_worker(item: Tuple[int, Scenario]):
    """Pool task: ``(input index, scenario) -> (index, result, obs)``.

    The index rides along so the parent can reassemble ``imap_unordered``
    output into input order without trusting arrival order.  The third
    element is this worker's *cumulative* metrics snapshot (``None`` when
    observability is off); the parent keeps the highest-``seq`` snapshot
    per worker pid and merges them, so per-task snapshots are cheap to
    take and the fold is deterministic regardless of arrival order.
    """
    index, scenario = item
    result = _execute_captured(
        scenario, _WORKER_MODELS[scenario.model_key], _WORKER_ENGINE
    )
    payload = _obs.snapshot() if _obs.ENABLED else None
    return index, result, payload


class FleetRunner:
    """Execute a list of scenarios, in parallel when it pays off.

    ``workers`` defaults to the CPUs available to this process; pass
    ``workers=1`` (or ``parallel=False``) for the serial fallback.  The
    pool is only spun up when there are at least two scenarios to
    *simulate* and two workers — otherwise serial execution is strictly
    cheaper.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        parallel: bool = True,
        cache: Optional[ModelCache] = None,
        engine: str = "reference",
    ) -> None:
        from repro.sim.fastsim import ENGINES

        if workers is None:
            try:
                workers = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r} (expected one of {ENGINES})"
            )
        self.workers = workers
        self.parallel = parallel
        self.engine = engine
        self.cache = cache if cache is not None else ModelCache()

    def prepare_models(
        self, scenarios: Sequence[Scenario]
    ) -> Dict[Tuple, QuantizedModel]:
        """Resolve every distinct model once through the shared cache."""
        return {s.model_key: self.cache.get(s) for s in scenarios}

    def run(
        self,
        scenarios: Sequence[Scenario],
        *,
        store=None,
        on_error: str = "raise",
    ) -> FleetReport:
        """Execute all scenarios and aggregate into a :class:`FleetReport`.

        ``store`` (a :class:`~repro.store.cache.ResultStore`) makes the
        run durable and resumable: scenarios whose content-addressed key
        is already in the store are replayed from it bit-identically
        (their models are never even prepared), and every freshly
        simulated result is committed to the store as it finishes — a
        killed run loses at most the store's unflushed tail.

        ``on_error`` selects the failure policy: ``"raise"`` stops at the
        first scenario whose execution raised (after committing the
        results that finished before it), ``"record"`` turns each failure
        into a DNF-style error row and keeps going.  Failures are never
        written to the store, so a later run retries them.
        """
        scenarios = list(scenarios)
        if not scenarios:
            raise ConfigurationError("no scenarios to run")
        if on_error not in ON_ERROR:
            raise ConfigurationError(
                f"unknown on_error {on_error!r} (expected one of {ON_ERROR})"
            )
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ConfigurationError("scenario names must be unique")
        t0 = time.perf_counter()

        cached: Dict[int, ScenarioResult] = {}
        to_run: List[Tuple[int, Scenario]] = []
        keys: List[Optional[str]] = [None] * len(scenarios)
        if store is not None:
            from repro.store.cache import scenario_key
            from repro.store.records import decode_result

            for i, scenario in enumerate(scenarios):
                keys[i] = scenario_key(scenario, self.engine)
                payload = store.lookup(keys[i])
                if payload is None:
                    to_run.append((i, scenario))
                else:
                    cached[i] = decode_result(scenario, payload)
        else:
            to_run = list(enumerate(scenarios))

        with _spans.span("fleet.model_prep", scenarios=len(to_run)):
            models = self.prepare_models([s for _, s in to_run])
        fresh: Dict[int, ScenarioResult] = {}

        def commit(index: int, result: ScenarioResult) -> None:
            fresh[index] = result
            if result.error:
                if on_error == "raise":
                    raise ScenarioExecutionError(
                        result.scenario.name, result.error
                    )
                return
            if store is not None:
                with _spans.span("fleet.commit",
                                 scenario=result.scenario.name):
                    store.put(keys[index], result, engine=self.engine)

        use_pool = self.parallel and self.workers > 1 and len(to_run) > 1
        if _obs.ENABLED and cached:
            _obs.count("fleet.scenarios_cached", len(cached))
        try:
            if use_pool:
                self._run_parallel(to_run, models, commit)
            else:
                for index, scenario in to_run:
                    # Serialize per model: the cached model's overflow
                    # monitor is per-scenario scratch, and with a shared
                    # ModelCache (repro.serve) another thread's run may
                    # hold the same model.  Distinct models don't contend.
                    with self.cache.execution_lock(scenario.model_key):
                        result = _execute_captured(
                            scenario, models[scenario.model_key], self.engine
                        )
                    commit(index, result)
        finally:
            # Whatever happens next, finished work is durable now.
            if store is not None:
                store.flush()

        results = [
            cached[i] if i in cached else fresh[i]
            for i in range(len(scenarios))
        ]
        wall_s = time.perf_counter() - t0
        return FleetReport(
            results=results,
            workers=self.workers if use_pool else 1,
            wall_s=wall_s,
            unique_models=len({s.model_key for s in scenarios}),
            from_cache=len(cached),
        )

    def _run_parallel(
        self,
        items: List[Tuple[int, Scenario]],
        models: Dict[Tuple, QuantizedModel],
        commit: Callable[[int, ScenarioResult], None],
    ) -> None:
        ctx = multiprocessing.get_context()
        procs = min(self.workers, len(items))
        if _obs.ENABLED:
            _obs.gauge("fleet.workers", procs)
        # Latest cumulative snapshot per worker pid; absorbed into the
        # parent registry only after a clean map (an aborted fleet does
        # not half-count worker metrics).
        worker_snaps: Dict[int, dict] = {}
        with ctx.Pool(
            procs, initializer=_init_worker,
            initargs=(models, self.engine, _obs.ENABLED),
        ) as pool:
            # chunksize=1: scenarios vary widely in cost (DNF-heavy cells
            # finish early, stall-heavy cells drag), so fine-grained
            # dispatch balances the load.  imap_unordered streams results
            # back as they finish — commit() runs (and the store grows) a
            # scenario at a time, not after the whole map.  A commit that
            # raises (on_error="raise") terminates the pool on exit from
            # this block; already-committed results stay durable.
            with _spans.span("fleet.dispatch", scenarios=len(items),
                             workers=procs):
                for index, result, payload in pool.imap_unordered(
                    _run_in_worker, items, chunksize=1
                ):
                    if payload is not None:
                        prev = worker_snaps.get(payload["pid"])
                        if prev is None or payload["seq"] >= prev["seq"]:
                            worker_snaps[payload["pid"]] = payload
                    commit(index, result)
        if worker_snaps and _obs.ENABLED:
            _obs.absorb(merge_all(list(worker_snaps.values())))


def run_fleet(
    scenarios: Sequence[Scenario],
    *,
    workers: Optional[int] = None,
    parallel: bool = True,
    engine: str = "reference",
    store=None,
    on_error: str = "raise",
) -> FleetReport:
    """One-call convenience wrapper around :class:`FleetRunner`."""
    return FleetRunner(workers, parallel=parallel, engine=engine).run(
        scenarios, store=store, on_error=on_error
    )
