"""Fleet execution: many independent sensing sessions, optionally parallel.

Each scenario is an isolated simulation — its own device, supply, runtime
instance, and sample stream — so a fleet is embarrassingly parallel.
:class:`FleetRunner` exploits that with a ``multiprocessing`` pool:

1. the parent resolves every distinct :attr:`Scenario.model_key` through a
   :class:`~repro.fleet.cache.ModelCache` (N scenarios pay for U <= N
   model preparations, not N);
2. the prepared models are shipped to each worker once, via the pool
   initializer (not once per task);
3. workers execute scenarios with :func:`execute_scenario` — the *same*
   function the serial path uses — so parallel results are bit-identical
   to serial results for the same specs.

Execution is *streaming*: results come back through per-worker reply
pipes and are committed one at a time — to a durable
:class:`~repro.store.cache.ResultStore` when one is attached — then
reassembled into input order at the end.  A scenario that raises is
captured in its worker and returned as a DNF-style failure record
carrying the scenario name; ``on_error="record"`` keeps the fleet
running with the failure as an error row, ``on_error="raise"`` (the
default) stops at the first failure with a
:class:`~repro.errors.ScenarioExecutionError` — but either way the
results committed before it are already safe in the store.

The pool is *supervised* rather than a bare ``multiprocessing.Pool``:
the parent dispatches exactly one scenario per worker at a time and
each worker answers on its own pipe, so a worker killed mid-scenario
(OOM killer, SIGKILL, a ``crash`` fault from :mod:`repro.faults`) is
detected as EOF on its pipe, its in-flight scenario is re-dispatched
under a bounded deterministic
:class:`~repro.faults.retry.RetryPolicy`, and the dead worker is
respawned.  (A *shared* result queue would be fatal here: SIGKILL can
orphan the queue's write lock and wedge every surviving worker — with
one pipe per worker a death can only ever corrupt the dead worker's
own channel, which the parent was about to discard anyway.)  A scenario that exhausts its retry budget becomes
a :class:`~repro.errors.WorkerLostError` (``error_kind="worker_lost"``
as an error row under ``on_error="record"``); a pool that keeps
collapsing past its respawn budget degrades to serial execution in the
parent with a warning.  Because scenario execution is deterministic, a
retried scenario's result is bit-identical to what the lost attempt
would have produced — recovery never changes a single output bit.

Determinism holds because every source of randomness is seeded from the
scenario itself (dataset stream from ``seed``, model from ``model_seed``,
stochastic traces from ``trace.seed``) and the simulator is pure
floating-point arithmetic with no wall-clock or cross-scenario coupling.
That same determinism is what makes durable results *cacheable*: a
result replayed from a store is bit-identical to re-simulating it.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
import warnings
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    ScenarioExecutionError,
    WorkerLostError,
)
from repro.faults import inject as _inject
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.fleet.cache import ModelCache
from repro.fleet.report import FleetReport, ScenarioResult
from repro.fleet.scenario import Scenario
from repro.obs import metrics as _obs
from repro.obs import spans as _spans
from repro.obs.snapshot import merge_all
from repro.rad.quantize import QuantizedModel

#: Accepted failure policies (see :meth:`FleetRunner.run`).
ON_ERROR = ("raise", "record")

#: Supervisor poll interval: how often an idle parent checks liveness.
_POLL_S = 0.05
#: Graceful/forced shutdown budget per escalation step (the watchdog).
_JOIN_S = 5.0
#: Cap on the pre-respawn backoff so one crashy worker cannot stall the
#: supervisor loop (and the other workers' result handling) for long.
_RESPAWN_SLEEP_CAP_S = 0.5


def execute_scenario(
    scenario: Scenario, qmodel: QuantizedModel, engine: str = "reference"
) -> ScenarioResult:
    """Run one scenario end to end and return its result record.

    Used verbatim by the serial path and by pool workers, which is what
    makes the two execution modes produce identical results.  ``engine``
    selects the simulation engine (``"reference"`` or ``"fast"``; see
    :mod:`repro.sim.fastsim` — results are bit-identical either way).
    """
    from repro.experiments.common import make_dataset, make_runtime
    from repro.hw.board import msp430fr5994
    from repro.power import VoltageMonitor
    from repro.sim.session import SensingSession

    harvester = scenario.build_harvester()  # None for mains scenarios
    device = msp430fr5994(supply=harvester)
    runtime = make_runtime(scenario.runtime, qmodel)
    monitor = None
    if runtime.snapshot_on_warning and harvester is not None:
        if scenario.v_warn is None:
            monitor = VoltageMonitor(harvester)
        else:
            monitor = VoltageMonitor(harvester, v_warn=scenario.v_warn)
    session = SensingSession(
        device,
        runtime,
        monitor=monitor,
        stall_limit=scenario.stall_limit,
        give_up_after_dnf=scenario.give_up_after_dnf,
        engine=engine,
    )
    ds = make_dataset(scenario.task, max(scenario.n_samples, 16),
                      seed=scenario.seed)
    # The cached model is shared across scenarios (and, serially, across
    # this whole run); its overflow monitor is per-scenario scratch.
    # Reset it here and snapshot the count into the result so overflow
    # statistics are scenario-scoped in both execution modes.
    qmodel.monitor.reset()
    stats = session.run(ds.x[: scenario.n_samples])
    labels = tuple(int(y) for y in ds.y[: len(stats.results)])
    return ScenarioResult(scenario=scenario, stats=stats, labels=labels,
                          overflow_events=qmodel.monitor.total)


def _failure_result(
    scenario: Scenario, exc: BaseException, kind: str = "exception"
) -> ScenarioResult:
    """A DNF-style error record for a scenario whose execution raised.

    ``kind`` lands in :attr:`ScenarioResult.error_kind`: ``"exception"``
    for failures the scenario's own execution raised, ``"worker_lost"``
    for scenarios whose worker process died past the retry budget.
    """
    from repro.sim.session import SessionStats

    summary = "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()
    return ScenarioResult(
        scenario=scenario,
        stats=SessionStats(runtime=scenario.runtime, results=[]),
        labels=(),
        error=summary,
        error_kind=kind,
    )


def _execute_captured(
    scenario: Scenario, qmodel: QuantizedModel, engine: str
) -> ScenarioResult:
    """``execute_scenario`` with exceptions folded into a failure record.

    Only :class:`Exception` is captured — ``KeyboardInterrupt`` and
    friends still abort the run.  The record (not a raised exception) is
    what crosses the process boundary, so a broken cell never tears down
    the pool mid-map, and the failure always names its scenario.
    """
    try:
        with _spans.span("fleet.scenario", scenario=scenario.name,
                         runtime=scenario.runtime):
            result = execute_scenario(scenario, qmodel, engine=engine)
        if _obs.ENABLED:
            _obs.count("fleet.scenarios")
        return result
    except Exception as exc:
        if _obs.ENABLED:
            _obs.count("fleet.scenarios_failed")
        return _failure_result(scenario, exc)


# -- worker-process plumbing --------------------------------------------------
#
# Pool workers receive the prepared models once (initializer) and look
# them up per scenario; both functions must be module-level picklables.

_WORKER_MODELS: Dict[Tuple, QuantizedModel] = {}
_WORKER_ENGINE = "reference"


def _init_worker(
    models: Dict[Tuple, QuantizedModel],
    engine: str = "reference",
    obs_on: bool = False,
) -> None:
    global _WORKER_ENGINE
    _WORKER_MODELS.clear()
    _WORKER_MODELS.update(models)
    _WORKER_ENGINE = engine
    # A forked worker inherits the parent's metric state; reset it so the
    # snapshots it ships back count only its own work (the parent absorbs
    # them on top of its own registry — no double counting).
    _obs.reset_metrics()
    _spans.clear()
    if obs_on:
        _obs.enable()
    else:
        _obs.disable()


def _supervised_worker(uid, inq, conn, models, engine, obs_on, plan):
    """One supervised worker process: loop ``inq`` tasks until sentinel.

    Tasks are ``(input index, scenario)``; each reply on this worker's
    own ``conn`` pipe is ``(worker uid, index, result, obs
    snapshot-or-None)``.  ``Connection.send`` writes synchronously in
    this thread — no feeder thread, no lock shared with other workers —
    so by the time the worker reads its next task the previous reply is
    fully in the pipe, and a SIGKILL can never tear a message another
    worker (or the parent) depends on.  The index rides along so the
    parent can reassemble unordered arrivals into input order; the uid
    (stable across the worker's lifetime, unique across respawns —
    unlike a reused pid) tells the parent whose in-flight slot to clear
    and whose *cumulative* metrics snapshot to keep (highest ``seq``
    per uid, merged deterministically at the end).

    ``plan`` re-installs the parent's active fault plan with fresh
    per-rule state, so each worker's fire pattern is a deterministic
    function of its own call sequence — under fork *and* spawn.  The
    ``fleet.worker`` fault site fires here, inside the child, which is
    what lets a ``crash`` rule kill -9 a real worker without ever
    threatening the parent (serial execution never fires it).
    """
    _init_worker(models, engine, obs_on)
    if plan is not None:
        _inject.install(plan)
    else:
        _inject.uninstall()
    while True:
        item = inq.get()
        if item is None:
            conn.close()
            return
        index, scenario = item
        try:
            if _inject.ENABLED:
                _inject.fire("fleet.worker", scenario=scenario.name)
        except Exception as exc:
            result = _failure_result(scenario, exc)
        else:
            result = _execute_captured(
                scenario, _WORKER_MODELS[scenario.model_key], _WORKER_ENGINE
            )
        payload = _obs.snapshot() if _obs.ENABLED else None
        conn.send((uid, index, result, payload))


class _WorkerHandle:
    """Parent-side view of one worker: process, task pipe, reply pipe."""

    __slots__ = ("uid", "proc", "inq", "conn", "current")

    def __init__(self, uid, proc, inq, conn) -> None:
        self.uid = uid
        self.proc = proc
        self.inq = inq
        #: Parent-side read end of the worker's private reply pipe.
        self.conn = conn
        #: The one (index, scenario) dispatched and not yet answered.
        self.current: Optional[Tuple[int, Scenario]] = None


class FleetRunner:
    """Execute a list of scenarios, in parallel when it pays off.

    ``workers`` defaults to the CPUs available to this process; pass
    ``workers=1`` (or ``parallel=False``) for the serial fallback.  The
    pool is only spun up when there are at least two scenarios to
    *simulate* and two workers — otherwise serial execution is strictly
    cheaper.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        parallel: bool = True,
        cache: Optional[ModelCache] = None,
        engine: str = "reference",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        from repro.sim.fastsim import ENGINES

        if workers is None:
            try:
                workers = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r} (expected one of {ENGINES})"
            )
        self.workers = workers
        self.parallel = parallel
        self.engine = engine
        self.cache = cache if cache is not None else ModelCache()
        #: Governs worker-lost re-dispatch, respawn backoff, and model
        #: build retries (see module docstring).
        self.retry = retry if retry is not None else RetryPolicy()

    def prepare_models(
        self, scenarios: Sequence[Scenario]
    ) -> Dict[Tuple, QuantizedModel]:
        """Resolve every scenario's model through the shared cache.

        Duplicate model keys are cache hits, so N scenarios still pay
        for U <= N distinct builds.  Each resolution runs under the
        runner's :class:`RetryPolicy` (builds read dataset files, so a
        transient ``OSError`` is recoverable weather) and passes the
        ``fleet.model_build`` fault site.
        """
        models: Dict[Tuple, QuantizedModel] = {}
        for s in scenarios:
            def build(scenario: Scenario = s) -> QuantizedModel:
                if _inject.ENABLED:
                    _inject.fire("fleet.model_build", scenario=scenario.name)
                return self.cache.get(scenario)

            models[s.model_key] = call_with_retry(
                build, policy=self.retry, retry_on=(OSError,),
                site="fleet.model_build",
            )
        return models

    def run(
        self,
        scenarios: Sequence[Scenario],
        *,
        store=None,
        on_error: str = "raise",
    ) -> FleetReport:
        """Execute all scenarios and aggregate into a :class:`FleetReport`.

        ``store`` (a :class:`~repro.store.cache.ResultStore`) makes the
        run durable and resumable: scenarios whose content-addressed key
        is already in the store are replayed from it bit-identically
        (their models are never even prepared), and every freshly
        simulated result is committed to the store as it finishes — a
        killed run loses at most the store's unflushed tail.

        ``on_error`` selects the failure policy: ``"raise"`` stops at the
        first scenario whose execution raised (after committing the
        results that finished before it), ``"record"`` turns each failure
        into a DNF-style error row and keeps going.  Failures are never
        written to the store, so a later run retries them.
        """
        scenarios = list(scenarios)
        if not scenarios:
            raise ConfigurationError("no scenarios to run")
        if on_error not in ON_ERROR:
            raise ConfigurationError(
                f"unknown on_error {on_error!r} (expected one of {ON_ERROR})"
            )
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ConfigurationError("scenario names must be unique")
        t0 = time.perf_counter()

        cached: Dict[int, ScenarioResult] = {}
        to_run: List[Tuple[int, Scenario]] = []
        keys: List[Optional[str]] = [None] * len(scenarios)
        if store is not None:
            from repro.store.cache import scenario_key
            from repro.store.records import decode_result

            for i, scenario in enumerate(scenarios):
                keys[i] = scenario_key(scenario, self.engine)
                payload = store.lookup(keys[i])
                if payload is None:
                    to_run.append((i, scenario))
                else:
                    cached[i] = decode_result(scenario, payload)
        else:
            to_run = list(enumerate(scenarios))

        with _spans.span("fleet.model_prep", scenarios=len(to_run)):
            models = self.prepare_models([s for _, s in to_run])
        fresh: Dict[int, ScenarioResult] = {}

        def commit(index: int, result: ScenarioResult) -> None:
            fresh[index] = result
            if result.error:
                if on_error == "raise":
                    cls = (
                        WorkerLostError
                        if result.error_kind == "worker_lost"
                        else ScenarioExecutionError
                    )
                    raise cls(result.scenario.name, result.error)
                return
            if store is not None:
                with _spans.span("fleet.commit",
                                 scenario=result.scenario.name):
                    store.put(keys[index], result, engine=self.engine)

        use_pool = self.parallel and self.workers > 1 and len(to_run) > 1
        if _obs.ENABLED and cached:
            _obs.count("fleet.scenarios_cached", len(cached))
        try:
            if use_pool:
                self._run_parallel(to_run, models, commit)
            else:
                for index, scenario in to_run:
                    # Serialize per model: the cached model's overflow
                    # monitor is per-scenario scratch, and with a shared
                    # ModelCache (repro.serve) another thread's run may
                    # hold the same model.  Distinct models don't contend.
                    with self.cache.execution_lock(scenario.model_key):
                        result = _execute_captured(
                            scenario, models[scenario.model_key], self.engine
                        )
                    commit(index, result)
        finally:
            # Whatever happens next, finished work is durable now.
            if store is not None:
                store.flush()

        results = [
            cached[i] if i in cached else fresh[i]
            for i in range(len(scenarios))
        ]
        wall_s = time.perf_counter() - t0
        return FleetReport(
            results=results,
            workers=self.workers if use_pool else 1,
            wall_s=wall_s,
            unique_models=len({s.model_key for s in scenarios}),
            from_cache=len(cached),
        )

    def _run_parallel(
        self,
        items: List[Tuple[int, Scenario]],
        models: Dict[Tuple, QuantizedModel],
        commit: Callable[[int, ScenarioResult], None],
    ) -> None:
        """The supervised pool (see module docstring).

        The parent dispatches one scenario per worker at a time — so it
        always knows exactly which scenario a dead worker was holding —
        and multiplexes the per-worker reply pipes with a short-timeout
        :func:`multiprocessing.connection.wait`; a worker's death shows
        up as EOF on its pipe (the parent closes its copy of the write
        end right after the fork, so the worker holds the only one).
        Per-scenario dispatch doubles as load balancing (scenarios vary
        widely in cost: DNF-heavy cells finish early, stall-heavy cells
        drag), and commit() runs — and the store grows — a scenario at
        a time, not after the whole map.
        """
        ctx = multiprocessing.get_context()
        procs = min(self.workers, len(items))
        retry = self.retry
        plan = _inject.active_plan()
        if _obs.ENABLED:
            _obs.gauge("fleet.workers", procs)
        pending: Deque[Tuple[int, Scenario]] = deque(items)
        attempts: Dict[int, int] = {}  # index -> worker-lost count
        done: set = set()
        # Latest cumulative snapshot per worker uid; absorbed into the
        # parent registry only after a clean run (an aborted fleet does
        # not half-count worker metrics).
        worker_snaps: Dict[int, dict] = {}
        respawns = 0
        respawn_budget = max(4, 2 * procs)
        degraded = False
        next_uid = 0
        by_uid: Dict[int, _WorkerHandle] = {}

        def spawn() -> _WorkerHandle:
            nonlocal next_uid
            uid = next_uid
            next_uid += 1
            inq = ctx.SimpleQueue()
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_supervised_worker,
                args=(uid, inq, send_end, models, self.engine,
                      _obs.ENABLED, plan),
                name=f"fleet-worker-{uid}",
                daemon=True,
            )
            proc.start()
            # The worker must hold the only write end: that is what
            # turns its death — clean or kill -9 — into EOF here.
            send_end.close()
            handle = _WorkerHandle(uid, proc, inq, recv_end)
            by_uid[uid] = handle
            return handle

        def handle_msg(msg) -> None:
            uid, index, result, payload = msg
            w = by_uid.get(uid)
            if w is not None and w.current is not None \
                    and w.current[0] == index:
                w.current = None
            if payload is not None:
                prev = worker_snaps.get(uid)
                if prev is None or payload["seq"] >= prev["seq"]:
                    worker_snaps[uid] = payload
            if index in done:
                # A duplicate from the lost-then-drained race: the
                # retried execution was bit-identical, drop it.
                return
            done.add(index)
            if attempts.get(index) and not result.error and _obs.ENABLED:
                _obs.count("faults.recovered")
                _obs.count("faults.recovered.fleet.worker")
            commit(index, result)

        workers = [spawn() for _ in range(procs)]
        clean = False
        try:
            with _spans.span("fleet.dispatch", scenarios=len(items),
                             workers=procs):
                while len(done) < len(items):
                    for w in workers:
                        if w.current is None and pending:
                            w.current = pending.popleft()
                            w.inq.put(w.current)
                    ready = multiprocessing.connection.wait(
                        [w.conn for w in workers], timeout=_POLL_S
                    )
                    dead = []
                    for i, w in enumerate(workers):
                        alive = w.proc.is_alive()
                        if w.conn not in ready and alive:
                            continue
                        # Replies can sit in the pipe ahead of EOF;
                        # drain before declaring any scenario lost.
                        try:
                            while w.conn.poll():
                                handle_msg(w.conn.recv())
                        except (EOFError, OSError):
                            alive = False
                        if not alive:
                            dead.append(i)
                    if not dead:
                        continue
                    for i in dead:
                        w = workers[i]
                        w.proc.join()
                        w.conn.close()
                        lost = w.current
                        w.current = None
                        if lost is None or lost[0] in done:
                            continue
                        index, scenario = lost
                        attempts[index] = n = attempts.get(index, 0) + 1
                        if _obs.ENABLED:
                            _obs.count("fleet.worker_lost")
                        if n >= retry.max_attempts:
                            done.add(index)
                            commit(index, _failure_result(
                                scenario,
                                WorkerLostError(
                                    scenario.name,
                                    f"worker process died "
                                    f"(attempt {n}/{retry.max_attempts})",
                                ),
                                kind="worker_lost",
                            ))
                        else:
                            pending.appendleft(lost)
                    respawns += len(dead)
                    if respawns > respawn_budget:
                        degraded = True
                        break
                    if _obs.ENABLED:
                        _obs.count("fleet.respawns", len(dead))
                    time.sleep(min(retry.backoff_s(respawns),
                                   _RESPAWN_SLEEP_CAP_S))
                    for i in dead:
                        by_uid.pop(workers[i].uid, None)
                        workers[i] = spawn()
            if degraded:
                # The pool keeps collapsing (e.g. a probability-1.0
                # crash plan, or a host OOM-killing every child): stop
                # burning respawns and finish in the parent.  Serial
                # execution never fires the fleet.worker site, so even
                # an always-crash plan completes here.
                self._teardown(workers, graceful=False)
                workers = []
                if _obs.ENABLED:
                    _obs.count("fleet.degraded_serial")
                remaining = [it for it in items if it[0] not in done]
                warnings.warn(
                    f"fleet worker pool collapsed {respawns} times "
                    f"(budget {respawn_budget}); finishing "
                    f"{len(remaining)} scenario(s) serially",
                    RuntimeWarning,
                )
                for index, scenario in remaining:
                    with self.cache.execution_lock(scenario.model_key):
                        result = _execute_captured(
                            scenario, models[scenario.model_key],
                            self.engine,
                        )
                    done.add(index)
                    commit(index, result)
            clean = True
        finally:
            self._teardown(workers, graceful=clean)
        if worker_snaps and _obs.ENABLED:
            _obs.absorb(merge_all(list(worker_snaps.values())))

    @staticmethod
    def _teardown(workers: List[_WorkerHandle], *, graceful: bool) -> None:
        """Stop the pool; never hang (the shutdown watchdog).

        Graceful exit sends each worker a sentinel and joins with a
        timeout; anything still alive after that — or everything, on
        the error path — is escalated to ``terminate()`` then
        ``kill()``, each with its own join budget, so a wedged worker
        can never hang the parent (or CI).
        """
        if not workers:
            return
        if graceful:
            for w in workers:
                try:
                    w.inq.put(None)
                except Exception:  # dead worker's pipe; nothing to stop
                    pass
            deadline = time.monotonic() + _JOIN_S
            for w in workers:
                w.proc.join(max(0.0, deadline - time.monotonic()))
        if any(w.proc.is_alive() for w in workers):
            for w in workers:
                if w.proc.is_alive():
                    w.proc.terminate()
            deadline = time.monotonic() + _JOIN_S
            for w in workers:
                w.proc.join(max(0.0, deadline - time.monotonic()))
            for w in workers:
                if w.proc.is_alive():  # pragma: no cover - last resort
                    w.proc.kill()
                    w.proc.join(1.0)
        for w in workers:
            w.conn.close()


def run_fleet(
    scenarios: Sequence[Scenario],
    *,
    workers: Optional[int] = None,
    parallel: bool = True,
    engine: str = "reference",
    store=None,
    on_error: str = "raise",
    retry: Optional[RetryPolicy] = None,
) -> FleetReport:
    """One-call convenience wrapper around :class:`FleetRunner`."""
    return FleetRunner(
        workers, parallel=parallel, engine=engine, retry=retry
    ).run(scenarios, store=store, on_error=on_error)
