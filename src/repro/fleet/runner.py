"""Fleet execution: many independent sensing sessions, optionally parallel.

Each scenario is an isolated simulation — its own device, supply, runtime
instance, and sample stream — so a fleet is embarrassingly parallel.
:class:`FleetRunner` exploits that with a ``multiprocessing`` pool:

1. the parent resolves every distinct :attr:`Scenario.model_key` through a
   :class:`~repro.fleet.cache.ModelCache` (N scenarios pay for U <= N
   model preparations, not N);
2. the prepared models are shipped to each worker once, via the pool
   initializer (not once per task);
3. workers execute scenarios with :func:`execute_scenario` — the *same*
   function the serial path uses — so parallel results are bit-identical
   to serial results for the same specs.

Determinism holds because every source of randomness is seeded from the
scenario itself (dataset stream from ``seed``, model from ``model_seed``,
stochastic traces from ``trace.seed``) and the simulator is pure
floating-point arithmetic with no wall-clock or cross-scenario coupling.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.cache import ModelCache
from repro.fleet.report import FleetReport, ScenarioResult
from repro.fleet.scenario import Scenario
from repro.rad.quantize import QuantizedModel


def execute_scenario(
    scenario: Scenario, qmodel: QuantizedModel, engine: str = "reference"
) -> ScenarioResult:
    """Run one scenario end to end and return its result record.

    Used verbatim by the serial path and by pool workers, which is what
    makes the two execution modes produce identical results.  ``engine``
    selects the simulation engine (``"reference"`` or ``"fast"``; see
    :mod:`repro.sim.fastsim` — results are bit-identical either way).
    """
    from repro.experiments.common import make_dataset, make_runtime
    from repro.hw.board import msp430fr5994
    from repro.power import VoltageMonitor
    from repro.sim.session import SensingSession

    harvester = scenario.build_harvester()  # None for mains scenarios
    device = msp430fr5994(supply=harvester)
    runtime = make_runtime(scenario.runtime, qmodel)
    monitor = None
    if runtime.snapshot_on_warning and harvester is not None:
        if scenario.v_warn is None:
            monitor = VoltageMonitor(harvester)
        else:
            monitor = VoltageMonitor(harvester, v_warn=scenario.v_warn)
    session = SensingSession(
        device,
        runtime,
        monitor=monitor,
        stall_limit=scenario.stall_limit,
        give_up_after_dnf=scenario.give_up_after_dnf,
        engine=engine,
    )
    ds = make_dataset(scenario.task, max(scenario.n_samples, 16),
                      seed=scenario.seed)
    # The cached model is shared across scenarios (and, serially, across
    # this whole run); its overflow monitor is per-scenario scratch.
    # Reset it here and snapshot the count into the result so overflow
    # statistics are scenario-scoped in both execution modes.
    qmodel.monitor.reset()
    stats = session.run(ds.x[: scenario.n_samples])
    labels = tuple(int(y) for y in ds.y[: len(stats.results)])
    return ScenarioResult(scenario=scenario, stats=stats, labels=labels,
                          overflow_events=qmodel.monitor.total)


# -- worker-process plumbing --------------------------------------------------
#
# Pool workers receive the prepared models once (initializer) and look
# them up per scenario; both functions must be module-level picklables.

_WORKER_MODELS: Dict[Tuple, QuantizedModel] = {}
_WORKER_ENGINE = "reference"


def _init_worker(models: Dict[Tuple, QuantizedModel], engine: str = "reference") -> None:
    global _WORKER_ENGINE
    _WORKER_MODELS.clear()
    _WORKER_MODELS.update(models)
    _WORKER_ENGINE = engine


def _run_in_worker(scenario: Scenario) -> ScenarioResult:
    return execute_scenario(
        scenario, _WORKER_MODELS[scenario.model_key], engine=_WORKER_ENGINE
    )


class FleetRunner:
    """Execute a list of scenarios, in parallel when it pays off.

    ``workers`` defaults to the CPUs available to this process; pass
    ``workers=1`` (or ``parallel=False``) for the serial fallback.  The
    pool is only spun up when there are at least two scenarios and two
    workers — otherwise serial execution is strictly cheaper.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        parallel: bool = True,
        cache: Optional[ModelCache] = None,
        engine: str = "reference",
    ) -> None:
        from repro.sim.fastsim import ENGINES

        if workers is None:
            try:
                workers = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r} (expected one of {ENGINES})"
            )
        self.workers = workers
        self.parallel = parallel
        self.engine = engine
        self.cache = cache if cache is not None else ModelCache()

    def prepare_models(
        self, scenarios: Sequence[Scenario]
    ) -> Dict[Tuple, QuantizedModel]:
        """Resolve every distinct model once through the shared cache."""
        return {s.model_key: self.cache.get(s) for s in scenarios}

    def run(self, scenarios: Sequence[Scenario]) -> FleetReport:
        """Execute all scenarios and aggregate into a :class:`FleetReport`."""
        scenarios = list(scenarios)
        if not scenarios:
            raise ConfigurationError("no scenarios to run")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ConfigurationError("scenario names must be unique")
        t0 = time.perf_counter()
        models = self.prepare_models(scenarios)
        use_pool = self.parallel and self.workers > 1 and len(scenarios) > 1
        if use_pool:
            results = self._run_parallel(scenarios, models)
        else:
            results = [
                execute_scenario(s, models[s.model_key], engine=self.engine)
                for s in scenarios
            ]
        wall_s = time.perf_counter() - t0
        return FleetReport(
            results=results,
            workers=self.workers if use_pool else 1,
            wall_s=wall_s,
            unique_models=len(models),
        )

    def _run_parallel(
        self,
        scenarios: List[Scenario],
        models: Dict[Tuple, QuantizedModel],
    ) -> List[ScenarioResult]:
        ctx = multiprocessing.get_context()
        procs = min(self.workers, len(scenarios))
        with ctx.Pool(
            procs, initializer=_init_worker, initargs=(models, self.engine)
        ) as pool:
            # chunksize=1: scenarios vary widely in cost (DNF-heavy cells
            # finish early, stall-heavy cells drag), so fine-grained
            # dispatch balances the load.  map preserves input order.
            return pool.map(_run_in_worker, scenarios, chunksize=1)


def run_fleet(
    scenarios: Sequence[Scenario],
    *,
    workers: Optional[int] = None,
    parallel: bool = True,
    engine: str = "reference",
) -> FleetReport:
    """One-call convenience wrapper around :class:`FleetRunner`."""
    return FleetRunner(workers, parallel=parallel, engine=engine).run(scenarios)
