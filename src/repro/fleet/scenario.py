"""Declarative scenario specifications.

A :class:`Scenario` describes one deployment cell — *which device
configuration, under which power conditions, running which runtime on
which model, over which sample stream* — entirely as data.  Scenarios are
frozen, hashable, and picklable, so a fleet run is just a list of specs
handed to :class:`~repro.fleet.runner.FleetRunner`; nothing about the
execution is encoded in imperative per-experiment scripts.

The power supply is itself declarative: a :class:`TraceSpec` names one of
the :mod:`repro.power.traces` profiles plus its parameters, and
``build()`` instantiates the real :class:`~repro.power.traces.PowerTrace`
inside whichever process executes the scenario.  This keeps specs tiny on
the wire (multiprocessing pickles them to workers) and keeps stochastic
traces reproducible — the trace seed travels with the spec.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.power import (
    CORPUS,
    Capacitor,
    ConstantTrace,
    EnergyHarvester,
    PowerTrace,
    SolarTrace,
    SquareWaveTrace,
    StochasticRFTrace,
)

#: Trace kinds understood by :class:`TraceSpec`.
TRACE_KINDS = ("constant", "square", "rf", "solar", "corpus", "mains")

#: Which fields each kind interprets (``kind``/``power_w`` always count,
#: except for ``"mains"``, which interprets nothing — tethered power).
_USED_FIELDS = {
    "constant": frozenset(),
    "square": frozenset({"period_s", "duty"}),
    "rf": frozenset({"period_s", "duty", "seed"}),
    "solar": frozenset({"period_s"}),
    "corpus": frozenset({"seed", "corpus"}),
    "mains": frozenset(),
}


@dataclass(frozen=True)
class TraceSpec:
    """Declarative power-trace description.

    ``kind`` selects the profile; the remaining fields are interpreted per
    kind:

    * ``"constant"`` — steady ``power_w``.
    * ``"square"``   — the paper's function-generator profile:
      ``power_w`` during the first ``duty`` fraction of each ``period_s``.
    * ``"rf"``       — bursty ambient-RF harvesting with mean power
      ``power_w``, mean on-time ``duty * period_s`` and mean off-time
      ``(1 - duty) * period_s``, pre-generated from ``seed``.
    * ``"solar"``    — clipped sinusoid peaking at ``power_w`` every
      ``period_s``.
    * ``"corpus"``   — the named :data:`repro.power.CORPUS` entry
      ``corpus``, rendered under ``seed`` in whichever process runs the
      scenario; ``power_w > 0`` rescales the rendering to that mean
      power (``power_w = 0`` keeps the entry's native scale).
    * ``"mains"``    — tethered, continuous power: the scenario's device
      gets *no* harvester at all (``build_harvester()`` returns
      ``None``), so execution never browns out.  This is how
      continuous-power experiments (Figure 7(a)/(c)) are expressed as
      fleet scenarios.  ``power_w`` and the capacitor are meaningless
      and must stay at their defaults.

    ``power_w`` left unset resolves per kind: 5 mW for the analytic
    profiles (the testbed's level), *native scale* (0) for corpus
    entries — a terse corpus spec must not silently renormalize every
    entry to one level and flatten the supply-level axis — and 0 for
    ``mains`` (unlimited by definition; a non-zero value is rejected).

    A field the selected kind does *not* interpret must be left at its
    default: a non-default value is rejected at construction.  Silently
    ignoring it would let a grid sweep (say, RF seeds applied to a
    square-wave axis) collapse into duplicate cells that differ only in
    name — a bug that shows up as suspiciously tight fleet
    distributions, not as an error.
    """

    kind: str = "square"
    power_w: Optional[float] = None
    period_s: float = 0.05
    duty: float = 0.3
    seed: int = 0
    corpus: str = ""

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ConfigurationError(
                f"unknown trace kind {self.kind!r} (expected one of {TRACE_KINDS})"
            )
        if self.power_w is None:  # per-kind default, see class docstring
            object.__setattr__(
                self, "power_w",
                0.0 if self.kind in ("corpus", "mains") else 5e-3)
        if self.kind == "mains" and self.power_w != 0.0:
            raise ConfigurationError(
                "mains supplies are unlimited by definition; power_w "
                f"{self.power_w!r} would be silently ignored"
            )
        if self.power_w < 0 or self.period_s <= 0 or not 0.0 < self.duty <= 1.0:
            raise ConfigurationError(
                f"invalid trace spec (power={self.power_w}, "
                f"period={self.period_s}, duty={self.duty})"
            )
        used = _USED_FIELDS[self.kind]
        for name, default in _DEFAULTS.items():
            if name not in used and getattr(self, name) != default:
                raise ConfigurationError(
                    f"{self.kind!r} traces do not use {name!r} "
                    f"(got {getattr(self, name)!r}); a non-default value "
                    "would silently produce a duplicate scenario"
                )
        if self.kind == "rf" and self.duty >= 1.0:
            # Fail at construction, not in a worker's build(): an RF trace
            # needs a non-zero mean off-time.
            raise ConfigurationError("rf traces need duty < 1.0")
        if self.seed < 0:
            # Same fail-fast stance: numpy rejects negative rng seeds,
            # but only once build() runs inside a worker.
            raise ConfigurationError(f"trace seed must be >= 0, got {self.seed}")
        if self.kind == "corpus" and not self.corpus:
            raise ConfigurationError(
                "corpus traces need an entry name (e.g. "
                "TraceSpec('corpus', corpus='rf-markov')); unknown names "
                "fail in build() against the live registry"
            )

    def build(self) -> PowerTrace:
        """Instantiate the concrete :class:`PowerTrace`."""
        if self.kind == "mains":
            raise ConfigurationError(
                "mains supplies have no power trace: the device runs "
                "tethered (Scenario.build_harvester() returns None)"
            )
        if self.kind == "constant":
            return ConstantTrace(self.power_w)
        if self.kind == "square":
            return SquareWaveTrace(self.power_w, self.period_s, self.duty)
        if self.kind == "rf":
            return StochasticRFTrace(
                self.power_w,
                mean_on_s=self.duty * self.period_s,
                mean_off_s=(1.0 - self.duty) * self.period_s,
                seed=self.seed,
            )
        if self.kind == "corpus":
            trace = CORPUS.get(self.corpus, seed=self.seed)
            if self.power_w > 0.0:
                trace = trace.scale_to_mean_power(self.power_w)
            return trace
        return SolarTrace(self.power_w, period_s=self.period_s)

    def label(self) -> str:
        """Short distinguishing tag (used in scenario names).

        Non-default period/duty (and, where used, a non-zero seed) are
        appended so that grids sweeping those axes — e.g. a fleet on
        i.i.d. RF supplies with different seeds — get unique scenario
        names, which the runner requires.
        """
        if self.kind == "mains":
            return "mains"
        if self.kind == "corpus":
            parts = [f"corpus:{self.corpus}"]
            if self.power_w > 0.0:
                parts.append(f"{self.power_w * 1e3:g}mW")
        else:
            parts = [f"{self.kind}@{self.power_w * 1e3:g}mW"]
            if self.period_s != 0.05:
                parts.append(f"p{self.period_s * 1e3:g}ms")
            if self.duty != 0.3:
                parts.append(f"d{self.duty * 100:g}")
        if self.seed != 0:
            parts.append(f"s{self.seed}")
        return "-".join(parts)


#: Defaults of the per-kind-ignorable fields, derived from the dataclass
#: definition itself so the rejection logic cannot drift from the field
#: declarations.
_DEFAULTS = {
    f.name: f.default
    for f in dataclasses.fields(TraceSpec)
    if f.name in ("period_s", "duty", "seed", "corpus")
}


@dataclass(frozen=True)
class Scenario:
    """One cell of a fleet study: device x supply x runtime x stream.

    All fields are plain data, so scenarios can be generated in bulk by
    :func:`~repro.fleet.grid.scenario_grid`, pickled to worker processes,
    and compared for equality in tests.  ``seed`` drives the sample
    stream; ``model_seed`` (together with the model-shape fields) drives
    model construction and is the cache key for shared
    :func:`~repro.experiments.common.prepare_quantized` artifacts.
    """

    name: str
    task: str = "mnist"
    runtime: str = "ACE+FLEX"
    trace: TraceSpec = field(default_factory=TraceSpec)
    cap_uf: float = 100.0
    n_samples: int = 4
    seed: int = 0
    model_seed: int = 0
    compressed: bool = True
    pruned: bool = True
    calib_n: int = 16
    stall_limit: int = 6
    give_up_after_dnf: int = 2
    v_warn: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        if self.cap_uf <= 0:
            raise ConfigurationError("cap_uf must be positive")
        if self.trace.kind == "mains" and self.cap_uf != 100.0:
            # Tethered devices have no capacitor in the loop; accepting a
            # swept cap_uf here would let a capacitor axis crossed with a
            # mains regime collapse into identical cells under distinct
            # names (the TraceSpec ignored-field stance, one level up).
            raise ConfigurationError(
                f"mains scenarios have no capacitor; cap_uf {self.cap_uf!r} "
                "would be silently ignored (leave it at the default)"
            )

    @property
    def model_key(self) -> Tuple:
        """Cache key: scenarios sharing it run the identical model."""
        return (self.task, self.compressed, self.pruned, self.model_seed,
                self.calib_n)

    def build_harvester(self) -> Optional[EnergyHarvester]:
        """The scenario's supply: its trace into its capacitor.

        ``None`` for ``mains`` scenarios — the device runs tethered, on
        continuous power, with no capacitor in the loop.
        """
        if self.trace.kind == "mains":
            return None
        # Divide rather than multiply by 1e-6: x / 1e6 is the correctly
        # rounded quotient, which equals the decimal literal (100 / 1e6
        # == 100e-6 bit-for-bit), so scenario supplies match experiment
        # code writing capacitances as literals, down to the last ulp.
        return EnergyHarvester(self.trace.build(), Capacitor(self.cap_uf / 1e6))

    def with_runtime(self, runtime: str) -> "Scenario":
        """Copy of this scenario on a different runtime (name updated)."""
        return replace(self, runtime=runtime,
                       name=f"{self.name.rsplit('/', 1)[0]}/{runtime}")
