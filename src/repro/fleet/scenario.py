"""Declarative scenario specifications.

A :class:`Scenario` describes one deployment cell — *which device
configuration, under which power conditions, running which runtime on
which model, over which sample stream* — entirely as data.  Scenarios are
frozen, hashable, and picklable, so a fleet run is just a list of specs
handed to :class:`~repro.fleet.runner.FleetRunner`; nothing about the
execution is encoded in imperative per-experiment scripts.

The power supply is itself declarative: a :class:`TraceSpec` names one of
the :mod:`repro.power.traces` profiles plus its parameters, and
``build()`` instantiates the real :class:`~repro.power.traces.PowerTrace`
inside whichever process executes the scenario.  This keeps specs tiny on
the wire (multiprocessing pickles them to workers) and keeps stochastic
traces reproducible — the trace seed travels with the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.power import (
    Capacitor,
    ConstantTrace,
    EnergyHarvester,
    PowerTrace,
    SolarTrace,
    SquareWaveTrace,
    StochasticRFTrace,
)

#: Trace kinds understood by :class:`TraceSpec`.
TRACE_KINDS = ("constant", "square", "rf", "solar")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative power-trace description.

    ``kind`` selects the profile; the remaining fields are interpreted per
    kind:

    * ``"constant"`` — steady ``power_w``; ``period_s``/``duty`` unused.
    * ``"square"``   — the paper's function-generator profile:
      ``power_w`` during the first ``duty`` fraction of each ``period_s``.
    * ``"rf"``       — bursty ambient-RF harvesting with mean power
      ``power_w``, mean on-time ``duty * period_s`` and mean off-time
      ``(1 - duty) * period_s``, pre-generated from ``seed``.
    * ``"solar"``    — clipped sinusoid peaking at ``power_w`` every
      ``period_s``.
    """

    kind: str = "square"
    power_w: float = 5e-3
    period_s: float = 0.05
    duty: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ConfigurationError(
                f"unknown trace kind {self.kind!r} (expected one of {TRACE_KINDS})"
            )
        if self.power_w < 0 or self.period_s <= 0 or not 0.0 < self.duty <= 1.0:
            raise ConfigurationError(
                f"invalid trace spec (power={self.power_w}, "
                f"period={self.period_s}, duty={self.duty})"
            )
        if self.kind == "rf" and self.duty >= 1.0:
            # Fail at construction, not in a worker's build(): an RF trace
            # needs a non-zero mean off-time.
            raise ConfigurationError("rf traces need duty < 1.0")

    def build(self) -> PowerTrace:
        """Instantiate the concrete :class:`PowerTrace`."""
        if self.kind == "constant":
            return ConstantTrace(self.power_w)
        if self.kind == "square":
            return SquareWaveTrace(self.power_w, self.period_s, self.duty)
        if self.kind == "rf":
            return StochasticRFTrace(
                self.power_w,
                mean_on_s=self.duty * self.period_s,
                mean_off_s=(1.0 - self.duty) * self.period_s,
                seed=self.seed,
            )
        return SolarTrace(self.power_w, period_s=self.period_s)

    def label(self) -> str:
        """Short distinguishing tag (used in scenario names).

        Non-default period/duty (and, for RF, a non-zero seed) are
        appended so that grids sweeping those axes — e.g. a fleet on
        i.i.d. RF supplies with different seeds — get unique scenario
        names, which the runner requires.
        """
        parts = [f"{self.kind}@{self.power_w * 1e3:g}mW"]
        if self.period_s != 0.05:
            parts.append(f"p{self.period_s * 1e3:g}ms")
        if self.duty != 0.3:
            parts.append(f"d{self.duty * 100:g}")
        if self.kind == "rf" and self.seed != 0:
            parts.append(f"s{self.seed}")
        return "-".join(parts)


@dataclass(frozen=True)
class Scenario:
    """One cell of a fleet study: device x supply x runtime x stream.

    All fields are plain data, so scenarios can be generated in bulk by
    :func:`~repro.fleet.grid.scenario_grid`, pickled to worker processes,
    and compared for equality in tests.  ``seed`` drives the sample
    stream; ``model_seed`` (together with the model-shape fields) drives
    model construction and is the cache key for shared
    :func:`~repro.experiments.common.prepare_quantized` artifacts.
    """

    name: str
    task: str = "mnist"
    runtime: str = "ACE+FLEX"
    trace: TraceSpec = field(default_factory=TraceSpec)
    cap_uf: float = 100.0
    n_samples: int = 4
    seed: int = 0
    model_seed: int = 0
    compressed: bool = True
    pruned: bool = True
    calib_n: int = 16
    stall_limit: int = 6
    give_up_after_dnf: int = 2
    v_warn: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        if self.cap_uf <= 0:
            raise ConfigurationError("cap_uf must be positive")

    @property
    def model_key(self) -> Tuple:
        """Cache key: scenarios sharing it run the identical model."""
        return (self.task, self.compressed, self.pruned, self.model_seed,
                self.calib_n)

    def build_harvester(self) -> EnergyHarvester:
        """The scenario's supply: its trace into its capacitor."""
        return EnergyHarvester(self.trace.build(), Capacitor(self.cap_uf * 1e-6))

    def with_runtime(self, runtime: str) -> "Scenario":
        """Copy of this scenario on a different runtime (name updated)."""
        return replace(self, runtime=runtime,
                       name=f"{self.name.rsplit('/', 1)[0]}/{runtime}")
