"""Fleet-level aggregation and rendering.

A fleet run produces one :class:`ScenarioResult` per scenario; a
:class:`FleetReport` holds them all and answers the deployment questions
the per-inference experiments cannot: across diverse power conditions,
what throughput does each runtime sustain at the median and the tail, how
much energy does an inference cost in distribution, how often do devices
reboot, and what fraction of work is simply never finished (DNF)?

The serializable payload of a report is a
:class:`~repro.study.table.ResultTable`: :meth:`FleetReport.
scenario_table` is the typed per-scenario table, :meth:`FleetReport.
runtime_table` derives the per-runtime distribution summary *from that
table* (so a table loaded back from JSON/NPZ aggregates identically to a
live report), and :meth:`FleetReport.render` is built on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.fleet.scenario import Scenario
from repro.sim.session import SessionStats


@dataclass
class ScenarioResult:
    """Outcome of one scenario: the spec, its session stats, true labels.

    ``overflow_events`` is the scenario-scoped saturation count from the
    (shared) quantized model's overflow monitor — read it from here, not
    from the cached model, whose monitor is reset per scenario.

    ``error`` is non-empty when the scenario's execution *raised* instead
    of finishing: the runner records a DNF-style failure row (empty
    stats, no labels) carrying the exception summary, so one broken cell
    is data in the report rather than the death of the whole fleet.
    ``error_kind`` types the failure: ``"exception"`` for failures the
    execution itself raised, ``"worker_lost"`` when the worker process
    died (SIGKILL/OOM) past the supervisor's retry budget; empty for
    successful scenarios.
    """

    scenario: Scenario
    stats: SessionStats
    labels: Tuple[int, ...] = ()
    overflow_events: int = 0
    error: str = ""
    error_kind: str = ""

    @property
    def accuracy(self) -> float:
        """Accuracy over completed inferences (0.0 when none completed)."""
        if not self.labels:
            return 0.0
        return self.stats.accuracy(list(self.labels))

    def row(self) -> Tuple:
        """Per-scenario table row (see ``FleetReport.render``)."""
        s = self.stats
        return (
            self.scenario.name,
            f"{s.completed}/{s.inferences}",
            f"{s.throughput_hz:.2f}",
            f"{s.total_energy_j * 1e3:.2f}",
            f"{s.total_reboots}",
        )


@dataclass
class RuntimeAggregate:
    """Distribution summary of every scenario sharing one runtime."""

    runtime: str
    scenarios: int = 0
    inferences: int = 0
    completed: int = 0
    throughput_hz: List[float] = field(default_factory=list)
    energy_mj_per_inf: List[float] = field(default_factory=list)
    reboots_per_inf: List[float] = field(default_factory=list)

    @property
    def dnf_rate(self) -> float:
        """Fraction of attempted inferences that never finished."""
        if self.inferences == 0:
            return 0.0
        return 1.0 - self.completed / self.inferences

    def percentile(self, values: Sequence[float], q: float) -> float:
        from repro.study.table import percentile

        return percentile(values, q)

    def row(self) -> Tuple:
        return (
            self.runtime,
            f"{self.scenarios}",
            f"{100 * self.dnf_rate:.1f}%",
            f"{self.percentile(self.throughput_hz, 50):.2f}",
            f"{self.percentile(self.throughput_hz, 10):.2f}",
            f"{self.percentile(self.energy_mj_per_inf, 50):.2f}",
            f"{self.percentile(self.energy_mj_per_inf, 90):.2f}",
            f"{self.percentile(self.reboots_per_inf, 50):.1f}",
        )


@dataclass
class FleetReport:
    """All results of one fleet run plus execution metadata.

    ``unique_models`` counts distinct :attr:`Scenario.model_key` values
    across the *specs* (not the models actually prepared), so the count —
    and the table meta derived from it — is identical whether results
    came from simulation or from a durable-store cache hit.
    ``from_cache`` says how many of :attr:`results` were replayed from a
    :class:`~repro.store.cache.ResultStore` instead of simulated.
    """

    results: List[ScenarioResult]
    workers: int = 1
    wall_s: float = 0.0
    unique_models: int = 0
    from_cache: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> int:
        """Scenarios that raised (recorded as error rows, see runner)."""
        return sum(1 for r in self.results if r.error)

    def by_runtime(self) -> Dict[str, List[ScenarioResult]]:
        """Results grouped by runtime, in first-seen order."""
        groups: Dict[str, List[ScenarioResult]] = {}
        for r in self.results:
            groups.setdefault(r.scenario.runtime, []).append(r)
        return groups

    def aggregate(self) -> Dict[str, RuntimeAggregate]:
        """Per-runtime distribution summaries."""
        out: Dict[str, RuntimeAggregate] = {}
        for runtime, results in self.by_runtime().items():
            agg = RuntimeAggregate(runtime=runtime)
            for r in results:
                s = r.stats
                agg.scenarios += 1
                agg.inferences += s.inferences
                agg.completed += s.completed
                agg.throughput_hz.append(s.throughput_hz)
                if s.completed:
                    agg.energy_mj_per_inf.append(
                        s.total_energy_j * 1e3 / s.completed
                    )
                    agg.reboots_per_inf.append(s.total_reboots / s.completed)
            out[runtime] = agg
        return out

    @property
    def total_inferences(self) -> int:
        return sum(r.stats.inferences for r in self.results)

    @property
    def total_completed(self) -> int:
        return sum(r.stats.completed for r in self.results)

    #: Schema of :meth:`scenario_table` (the serializable fleet payload).
    SCENARIO_COLUMNS = (
        ("scenario", "str"),
        ("task", "str"),
        ("runtime", "str"),
        ("trace", "str"),
        ("cap_uf", "float"),
        ("inferences", "int"),
        ("completed", "int"),
        ("throughput_hz", "float"),
        ("energy_mj", "float"),
        ("reboots", "int"),
        ("accuracy", "float"),
        ("overflow_events", "int"),
        ("error", "str"),
        ("error_kind", "str"),
    )

    def scenario_table(self) -> "ResultTable":
        """The per-scenario results as a typed, serializable table."""
        from repro.study.table import ResultTable

        table = ResultTable(
            self.SCENARIO_COLUMNS,
            meta={
                "kind": "fleet-scenarios",
                "workers": str(self.workers),
                "unique_models": str(self.unique_models),
            },
        )
        for r in self.results:
            s = r.stats
            table.append(
                scenario=r.scenario.name,
                task=r.scenario.task,
                runtime=r.scenario.runtime,
                trace=r.scenario.trace.label(),
                cap_uf=r.scenario.cap_uf,
                inferences=s.inferences,
                completed=s.completed,
                throughput_hz=s.throughput_hz,
                energy_mj=s.total_energy_j * 1e3,
                reboots=s.total_reboots,
                accuracy=r.accuracy,
                overflow_events=r.overflow_events,
                error=r.error,
                error_kind=r.error_kind,
            )
        return table

    @staticmethod
    def runtime_table(scenarios: "ResultTable") -> "ResultTable":
        """Per-runtime distribution summary derived from a scenario table.

        A *static* transformation of the payload — it works identically
        on a live report's table and on one round-tripped through
        JSON/NPZ, which is what makes fleet results portable.
        """
        from repro.study.table import ResultTable

        out = ResultTable((
            ("runtime", "str"),
            ("scenarios", "int"),
            ("dnf_rate", "float"),
            ("throughput_hz_p50", "float"),
            ("throughput_hz_p10", "float"),
            ("mj_per_inf_p50", "float"),
            ("mj_per_inf_p90", "float"),
            ("reboots_per_inf_p50", "float"),
        ))
        for runtime, group in scenarios.group_by("runtime").items():
            inferences = sum(group.column("inferences"))
            completed = sum(group.column("completed"))
            done = group.filter(lambda r: r["completed"] > 0)
            per_inf_mj = [r["energy_mj"] / r["completed"] for r in done]
            per_inf_rb = [r["reboots"] / r["completed"] for r in done]
            out.append(
                runtime=runtime,
                scenarios=len(group),
                dnf_rate=(1.0 - completed / inferences) if inferences else 0.0,
                throughput_hz_p50=group.percentile("throughput_hz", 50),
                throughput_hz_p10=group.percentile("throughput_hz", 10),
                mj_per_inf_p50=_percentile(per_inf_mj, 50),
                mj_per_inf_p90=_percentile(per_inf_mj, 90),
                reboots_per_inf_p50=_percentile(per_inf_rb, 50),
            )
        return out

    def render(self, *, per_scenario: bool = True) -> str:
        """Text report: per-runtime distributions, then per-scenario rows."""
        scenarios = self.scenario_table()
        title = (
            f"Fleet report: {len(self)} scenarios, "
            f"{self.total_completed}/{self.total_inferences} inferences, "
            f"{self.unique_models} unique models, "
            f"{self.workers} worker(s), {self.wall_s:.2f} s"
        )
        if self.from_cache:
            title += f", {self.from_cache} from cache"
        if self.failures:
            title += f", {self.failures} FAILED"
        parts = [render_runtime_table(self.runtime_table(scenarios), title=title)]
        if per_scenario:
            parts.append(render_scenario_table(scenarios))
        return "\n\n".join(parts)


def _percentile(values: Sequence[float], q: float) -> float:
    from repro.study.table import percentile

    return percentile(values, q)


def render_runtime_table(aggregates: "ResultTable",
                         title: str = "Per-runtime distributions") -> str:
    """Format a :meth:`FleetReport.runtime_table` result as text."""
    from repro.experiments.reporting import format_table

    return format_table(
        ["runtime", "cells", "DNF", "thr p50", "thr p10",
         "mJ/inf p50", "mJ/inf p90", "rb/inf p50"],
        [
            (
                r["runtime"],
                f"{r['scenarios']}",
                f"{100 * r['dnf_rate']:.1f}%",
                f"{r['throughput_hz_p50']:.2f}",
                f"{r['throughput_hz_p10']:.2f}",
                f"{r['mj_per_inf_p50']:.2f}",
                f"{r['mj_per_inf_p90']:.2f}",
                f"{r['reboots_per_inf_p50']:.1f}",
            )
            for r in aggregates
        ],
        title=title,
    )


def render_scenario_table(scenarios: "ResultTable",
                          title: str = "Per-scenario results") -> str:
    """Format a :meth:`FleetReport.scenario_table` result as text."""
    from repro.experiments.reporting import format_table

    return format_table(
        ["scenario", "done", "inf/s", "mJ", "reboots"],
        [
            (
                r["scenario"],
                "ERROR" if r["error"] else f"{r['completed']}/{r['inferences']}",
                f"{r['throughput_hz']:.2f}",
                f"{r['energy_mj']:.2f}",
                f"{r['reboots']}",
            )
            for r in scenarios
        ],
        title=title,
    )
