"""Fleet-level aggregation and rendering.

A fleet run produces one :class:`ScenarioResult` per scenario; a
:class:`FleetReport` holds them all and answers the deployment questions
the per-inference experiments cannot: across diverse power conditions,
what throughput does each runtime sustain at the median and the tail, how
much energy does an inference cost in distribution, how often do devices
reboot, and what fraction of work is simply never finished (DNF)?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fleet.scenario import Scenario
from repro.sim.session import SessionStats


@dataclass
class ScenarioResult:
    """Outcome of one scenario: the spec, its session stats, true labels.

    ``overflow_events`` is the scenario-scoped saturation count from the
    (shared) quantized model's overflow monitor — read it from here, not
    from the cached model, whose monitor is reset per scenario.
    """

    scenario: Scenario
    stats: SessionStats
    labels: Tuple[int, ...] = ()
    overflow_events: int = 0

    @property
    def accuracy(self) -> float:
        """Accuracy over completed inferences (0.0 when none completed)."""
        if not self.labels:
            return 0.0
        return self.stats.accuracy(list(self.labels))

    def row(self) -> Tuple:
        """Per-scenario table row (see ``FleetReport.render``)."""
        s = self.stats
        return (
            self.scenario.name,
            f"{s.completed}/{s.inferences}",
            f"{s.throughput_hz:.2f}",
            f"{s.total_energy_j * 1e3:.2f}",
            f"{s.total_reboots}",
        )


@dataclass
class RuntimeAggregate:
    """Distribution summary of every scenario sharing one runtime."""

    runtime: str
    scenarios: int = 0
    inferences: int = 0
    completed: int = 0
    throughput_hz: List[float] = field(default_factory=list)
    energy_mj_per_inf: List[float] = field(default_factory=list)
    reboots_per_inf: List[float] = field(default_factory=list)

    @property
    def dnf_rate(self) -> float:
        """Fraction of attempted inferences that never finished."""
        if self.inferences == 0:
            return 0.0
        return 1.0 - self.completed / self.inferences

    def percentile(self, values: Sequence[float], q: float) -> float:
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values, dtype=float), q))

    def row(self) -> Tuple:
        return (
            self.runtime,
            f"{self.scenarios}",
            f"{100 * self.dnf_rate:.1f}%",
            f"{self.percentile(self.throughput_hz, 50):.2f}",
            f"{self.percentile(self.throughput_hz, 10):.2f}",
            f"{self.percentile(self.energy_mj_per_inf, 50):.2f}",
            f"{self.percentile(self.energy_mj_per_inf, 90):.2f}",
            f"{self.percentile(self.reboots_per_inf, 50):.1f}",
        )


@dataclass
class FleetReport:
    """All results of one fleet run plus execution metadata."""

    results: List[ScenarioResult]
    workers: int = 1
    wall_s: float = 0.0
    unique_models: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def by_runtime(self) -> Dict[str, List[ScenarioResult]]:
        """Results grouped by runtime, in first-seen order."""
        groups: Dict[str, List[ScenarioResult]] = {}
        for r in self.results:
            groups.setdefault(r.scenario.runtime, []).append(r)
        return groups

    def aggregate(self) -> Dict[str, RuntimeAggregate]:
        """Per-runtime distribution summaries."""
        out: Dict[str, RuntimeAggregate] = {}
        for runtime, results in self.by_runtime().items():
            agg = RuntimeAggregate(runtime=runtime)
            for r in results:
                s = r.stats
                agg.scenarios += 1
                agg.inferences += s.inferences
                agg.completed += s.completed
                agg.throughput_hz.append(s.throughput_hz)
                if s.completed:
                    agg.energy_mj_per_inf.append(
                        s.total_energy_j * 1e3 / s.completed
                    )
                    agg.reboots_per_inf.append(s.total_reboots / s.completed)
            out[runtime] = agg
        return out

    @property
    def total_inferences(self) -> int:
        return sum(r.stats.inferences for r in self.results)

    @property
    def total_completed(self) -> int:
        return sum(r.stats.completed for r in self.results)

    def render(self, *, per_scenario: bool = True) -> str:
        """Text report: per-runtime distributions, then per-scenario rows."""
        from repro.experiments.reporting import format_table

        parts = [
            format_table(
                ["runtime", "cells", "DNF", "thr p50", "thr p10",
                 "mJ/inf p50", "mJ/inf p90", "rb/inf p50"],
                [agg.row() for agg in self.aggregate().values()],
                title=(
                    f"Fleet report: {len(self)} scenarios, "
                    f"{self.total_completed}/{self.total_inferences} inferences, "
                    f"{self.unique_models} unique models, "
                    f"{self.workers} worker(s), {self.wall_s:.2f} s"
                ),
            )
        ]
        if per_scenario:
            parts.append(
                format_table(
                    ["scenario", "done", "inf/s", "mJ", "reboots"],
                    [r.row() for r in self.results],
                    title="Per-scenario results",
                )
            )
        return "\n\n".join(parts)
