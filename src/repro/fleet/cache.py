"""Shared cache for expensive model artifacts.

Preparing a quantized model (:func:`repro.experiments.common.
prepare_quantized`) is by far the costliest step of a scenario — building
the architecture, applying pruning masks, and calibrating activation
grids.  A fleet sweeping 5 runtimes x 4 traces x 3 capacitors over one
task needs *one* model, not sixty.  :class:`ModelCache` memoizes prepared
models by :attr:`Scenario.model_key` so the runner pays once per distinct
(task, compression, pruning, seed, calibration) combination, and exposes
hit/miss counters so tests and reports can verify the sharing actually
happens.

Cached models are execution-stateless except for their overflow
monitor, which :func:`~repro.fleet.runner.execute_scenario` treats as
per-scenario scratch (reset before each session, snapshotted into the
:class:`~repro.fleet.report.ScenarioResult`).  Read overflow statistics
from results, never from a cached model after a fleet run.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.concurrency import KeyedLocks
from repro.fleet.scenario import Scenario
from repro.obs import metrics as _obs
from repro.obs import spans as _spans
from repro.rad.quantize import QuantizedModel


class ModelCache:
    """Memoized ``prepare_quantized`` keyed by :attr:`Scenario.model_key`.

    Thread-safe: racing first requests for the *same* key build exactly
    once (the loser waits on a per-key lock and picks up the winner's
    model), while distinct keys build fully concurrently — model builds
    run for seconds, so one global build lock would serialize a
    service's unrelated jobs.  Hits stay lock-free.
    """

    def __init__(self) -> None:
        self._models: Dict[Tuple, QuantizedModel] = {}
        self.hits = 0
        self.misses = 0
        self._build_locks = KeyedLocks()
        self._execution_locks = KeyedLocks()

    def __len__(self) -> int:
        return len(self._models)

    def execution_lock(self, key: Tuple) -> threading.Lock:
        """Per-model-key lock serializing *execution* on a shared model.

        Cached models are execution-stateless except for their overflow
        monitor (per-scenario scratch, see the module docstring), so two
        threads must not run scenarios on the same cached model at once.
        :class:`~repro.fleet.runner.FleetRunner`'s serial path holds this
        around each scenario; scenarios on distinct models stay parallel.
        """
        return self._execution_locks.lock(key)

    def get(self, scenario: Scenario) -> QuantizedModel:
        """The scenario's prepared model, building it on first request."""
        key = scenario.model_key
        model = self._models.get(key)
        if model is not None:
            self.hits += 1
            if _obs.ENABLED:
                _obs.count("fleet.model_cache.hits")
            return model
        # Imported lazily: experiments.common pulls in every runtime.
        from repro.experiments.common import prepare_quantized

        with self._build_locks.lock(key):
            model = self._models.get(key)
            if model is not None:
                self.hits += 1
                if _obs.ENABLED:
                    _obs.count("fleet.model_cache.hits")
                return model
            self.misses += 1
            if _obs.ENABLED:
                _obs.count("fleet.model_cache.misses")
            with _spans.span("fleet.model_build", task=scenario.task,
                             compressed=scenario.compressed,
                             pruned=scenario.pruned):
                model = prepare_quantized(
                    scenario.task,
                    compressed=scenario.compressed,
                    pruned=scenario.pruned,
                    seed=scenario.model_seed,
                    calib_n=scenario.calib_n,
                )
            self._models[key] = model
            return model

    def summary(self) -> str:
        return (
            f"model cache: {len(self)} unique models, "
            f"{self.hits} hits / {self.misses} misses"
        )
