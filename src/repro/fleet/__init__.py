"""Fleet-scale scenario engine.

Everything below :mod:`repro.sim` answers "what does *one* inference (or
one sensing session) do on one device?".  This package answers the
deployment question: how does a whole fleet of harvesters behave across
diverse power conditions?  It has four parts:

* :mod:`repro.fleet.scenario` — declarative, picklable
  :class:`Scenario`/:class:`TraceSpec` specs (device config x power trace
  x runtime x model x sample stream, described as data);
* :mod:`repro.fleet.grid` — :func:`scenario_grid` builders that sweep
  axis lists into scenario batches with deterministic seeding;
* :mod:`repro.fleet.runner` — :class:`FleetRunner`, which executes
  scenarios in parallel via ``multiprocessing`` (serial fallback
  included) with a shared :class:`ModelCache` so N scenarios pay for at
  most U <= N model preparations;
* :mod:`repro.fleet.report` — :class:`FleetReport` aggregation:
  per-runtime throughput/energy/reboot distributions, percentiles, and
  DNF rates.

``python -m repro fleet`` drives the default grid from the shell;
``examples/fleet_study.py`` shows the library API.
"""

from repro.fleet.cache import ModelCache
from repro.fleet.grid import (
    DEFAULT_RUNTIMES,
    DEFAULT_TRACES,
    corpus_traces,
    default_grid,
    scenario_grid,
    scenario_seed,
)
from repro.fleet.report import FleetReport, RuntimeAggregate, ScenarioResult
from repro.fleet.runner import FleetRunner, execute_scenario, run_fleet
from repro.fleet.scenario import TRACE_KINDS, Scenario, TraceSpec

__all__ = [
    "DEFAULT_RUNTIMES",
    "DEFAULT_TRACES",
    "FleetReport",
    "FleetRunner",
    "ModelCache",
    "RuntimeAggregate",
    "Scenario",
    "ScenarioResult",
    "TRACE_KINDS",
    "TraceSpec",
    "corpus_traces",
    "default_grid",
    "execute_scenario",
    "run_fleet",
    "scenario_grid",
    "scenario_seed",
]
