"""Scenario-grid builders: sweep fleets from axis lists, not hand-coding.

In the spirit of declarative constraint/scenario specification, a fleet
study is the cartesian product of a few axes — tasks x runtimes x power
traces x capacitor sizes — and this module turns those axis lists into a
list of :class:`~repro.fleet.scenario.Scenario` specs with stable names
and deterministic per-scenario seeds.  Seeds are derived from the
scenario *name* (CRC32, xor'd with ``base_seed``), so a scenario's stream
does not depend on where it lands in the grid: adding an axis value never
perturbs the other cells.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.scenario import Scenario, TraceSpec
from repro.power import CORPUS

#: The fleet-study default supplies: the paper's square wave, a bursty
#: RF-like source, and a slow solar-like sinusoid, all near the testbed's
#: average harvesting power.
DEFAULT_TRACES = (
    TraceSpec("square", 5e-3, 0.05, 0.3),
    TraceSpec("rf", 1.5e-3, 0.06, 0.4),
    TraceSpec("solar", 5e-3, 1.0),
)

#: Intermittence-safe runtimes — the ones a deployment would actually
#: ship (BASE and plain ACE DNF under harvested power; include them
#: explicitly to study failure envelopes).
DEFAULT_RUNTIMES = ("SONIC", "TAILS", "ACE+FLEX")


def corpus_traces(
    names: Optional[Sequence[str]] = None,
    *,
    power_w: float = 0.0,
    seeds: Sequence[int] = (0,),
) -> Tuple[TraceSpec, ...]:
    """Corpus-backed :class:`TraceSpec` axis: ``names`` x ``seeds``.

    ``names=None`` sweeps the whole registered corpus (sorted order).
    ``power_w > 0`` rescales every entry to that mean power so the axis
    isolates supply *shape* from supply *level*; the default keeps each
    entry's native scale.  Unknown names fail here, before a grid is
    built around them.  The seed axis applies only to *seeded* entries;
    a deterministic entry (``seeded=False`` in the registry, e.g. a
    recording) contributes exactly one cell — replicating it per seed
    would sweep identical supplies under different scenario names.
    """
    if names is None:
        names = CORPUS.names()
    if not names or not seeds:
        raise ConfigurationError("corpus_traces needs >= 1 name and seed")
    for name in names:
        CORPUS.entry(name)  # fail fast with the known-names message
    return tuple(
        TraceSpec("corpus", power_w, corpus=name, seed=seed)
        for name in names
        for seed in (seeds if CORPUS.entry(name).seeded else (0,))
    )


def scenario_seed(name: str, base_seed: int = 0) -> int:
    """Deterministic, order-independent seed for a named scenario.

    Masked to 32 bits so any integer ``base_seed`` (including negative
    ones from the CLI) yields a valid ``numpy`` seed.
    """
    return (zlib.crc32(name.encode("utf-8")) ^ base_seed) & 0xFFFFFFFF


def scenario_grid(
    *,
    tasks: Sequence[str] = ("mnist",),
    runtimes: Sequence[str] = DEFAULT_RUNTIMES,
    traces: Sequence[TraceSpec] = DEFAULT_TRACES,
    caps_uf: Sequence[float] = (100.0,),
    n_samples: int = 4,
    base_seed: int = 0,
    model_seed: int = 0,
    stall_limit: int = 6,
    give_up_after_dnf: int = 2,
) -> List[Scenario]:
    """Cartesian sweep over tasks x traces x capacitors x runtimes.

    Scenario names are ``task/trace/capuF/runtime``; every cell gets a
    deterministic seed via :func:`scenario_seed`.  All scenarios of one
    task share a model (one :class:`~repro.fleet.cache.ModelCache` entry).
    """
    if not (tasks and runtimes and traces and caps_uf):
        raise ConfigurationError("every grid axis needs at least one value")
    grid: List[Scenario] = []
    for task in tasks:
        for trace in traces:
            for cap_uf in caps_uf:
                for runtime in runtimes:
                    name = f"{task}/{trace.label()}/{cap_uf:g}uF/{runtime}"
                    grid.append(
                        Scenario(
                            name=name,
                            task=task,
                            runtime=runtime,
                            trace=trace,
                            cap_uf=cap_uf,
                            n_samples=n_samples,
                            seed=scenario_seed(name, base_seed),
                            model_seed=model_seed,
                            stall_limit=stall_limit,
                            give_up_after_dnf=give_up_after_dnf,
                        )
                    )
    return grid


def default_grid(
    *,
    tasks: Sequence[str] = ("mnist",),
    n_samples: int = 4,
    base_seed: int = 0,
    caps_uf: Optional[Sequence[float]] = None,
    traces: Optional[Sequence[TraceSpec]] = None,
) -> List[Scenario]:
    """The standard fleet study: 3 traces x 2 capacitors x 3 runtimes.

    Per task that is 18 scenarios — diverse enough for distribution
    statistics, small enough to run in seconds.  ``traces`` swaps the
    supply axis (e.g. :func:`corpus_traces` for a corpus-driven fleet)
    while keeping the standard capacitor/runtime axes.
    """
    return scenario_grid(
        tasks=tasks,
        traces=DEFAULT_TRACES if traces is None else traces,
        caps_uf=(100.0, 220.0) if caps_uf is None else caps_uf,
        n_samples=n_samples,
        base_seed=base_seed,
    )
