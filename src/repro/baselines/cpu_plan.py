"""CPU-only (software) atom builders shared by BASE and SONIC.

Both run the *dense* backbone models element-by-element on the MSP430
core: every output element is an inner-product loop over FRAM-resident
weights and activations.  SONIC additionally pays loop-continuation
overhead per iteration (task transitions + redo-logged state writes) in
exchange for per-iteration durability; BASE pays nothing and therefore
cannot survive power failures.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.hw import constants as C
from repro.rad.quantize import (
    QuantBCM,
    QuantConv,
    QuantDense,
    QuantFlatten,
    QuantPool,
    QuantReLU,
    QuantizedModel,
)
from repro.sim.atoms import Atom


def _loop_atom(
    label: str,
    layer: int,
    iterations: int,
    cycles_per_iter: float,
    fram_reads_per_iter: int,
    fram_writes_per_iter: int,
    *,
    sonic: bool,
) -> Atom:
    """One element-wise loop as a divisible atom."""
    if iterations < 1:
        raise ConfigurationError("loop needs at least one iteration")
    overhead = C.SONIC_LOOP_OVERHEAD_CYCLES if sonic else 0.0
    atom_kwargs = dict(
        label=label,
        layer=layer,
        component="cpu",
        cycles=iterations * (cycles_per_iter + overhead),
        fram_reads=iterations * fram_reads_per_iter,
        fram_writes=iterations * fram_writes_per_iter,
        commit=sonic,
        commit_words=C.SONIC_LOOP_FRAM_WORDS if sonic else 0,
    )
    if iterations >= 2:
        atom_kwargs.update(divisible=True, iterations=iterations)
    return Atom(**atom_kwargs)


def build_cpu_program(qmodel: QuantizedModel, *, sonic: bool) -> List[Atom]:
    """Compile a quantized model into an element-wise CPU program."""
    atoms: List[Atom] = []
    for idx, layer in enumerate(qmodel.layers):
        if isinstance(layer, QuantConv):
            out_c, in_c, kh, kw = layer.weight.shape
            active = [o for o in range(out_c) if np.any(layer.weight[o])]
            _, out_h, out_w = layer.out_shape
            vec = in_c * kh * kw
            atoms.append(
                _loop_atom(
                    f"conv{idx}",
                    idx,
                    iterations=len(active) * out_h * out_w,
                    cycles_per_iter=vec
                    * (C.CPU_MAC_CYCLES
                       + (C.SONIC_PER_ELEM_OVERHEAD_CYCLES if sonic else 0)),
                    fram_reads_per_iter=2 * vec,  # weights + input window
                    fram_writes_per_iter=1,
                    sonic=sonic,
                )
            )
        elif isinstance(layer, QuantDense):
            out_f, in_f = layer.weight.shape
            atoms.append(
                _loop_atom(
                    f"fc{idx}",
                    idx,
                    iterations=out_f,
                    cycles_per_iter=in_f
                    * (C.CPU_MAC_CYCLES
                       + (C.SONIC_PER_ELEM_OVERHEAD_CYCLES if sonic else 0)),
                    fram_reads_per_iter=2 * in_f,
                    fram_writes_per_iter=1,
                    sonic=sonic,
                )
            )
        elif isinstance(layer, QuantBCM):
            # A CPU-only runtime has no FFT accelerator; it computes the
            # block-circulant product as a software FFT pipeline.
            k = layer.block_size
            from repro.hw.cpu import software_fft_cycles

            per_block_fft = software_fft_cycles(k)
            n_ffts = layer.q + layer.p  # forward per input blk + inverse per out blk
            n_muls = layer.p * layer.q * k
            atoms.append(
                _loop_atom(
                    f"bcm{idx}",
                    idx,
                    iterations=layer.p * layer.q,
                    cycles_per_iter=(
                        n_ffts * per_block_fft / (layer.p * layer.q)
                        + n_muls
                        * (C.CPU_MAC_CYCLES
                           + (C.SONIC_PER_ELEM_OVERHEAD_CYCLES if sonic else 0))
                        / (layer.p * layer.q)
                    ),
                    fram_reads_per_iter=4 * k,
                    fram_writes_per_iter=2 * k,
                    sonic=sonic,
                )
            )
        elif isinstance(layer, QuantReLU):
            n = _numel(layer.out_shape)
            atoms.append(
                _loop_atom(
                    f"relu{idx}", idx, n, C.CPU_ALU_CYCLES, 1, 1, sonic=sonic
                )
            )
        elif isinstance(layer, QuantPool):
            n = _numel(layer.out_shape)
            ph, pw = layer.pool_size
            atoms.append(
                _loop_atom(
                    f"pool{idx}",
                    idx,
                    n,
                    ph * pw * C.CPU_ALU_CYCLES,
                    ph * pw,
                    1,
                    sonic=sonic,
                )
            )
        elif isinstance(layer, QuantFlatten):
            continue
        else:
            raise ConfigurationError(
                f"CPU planner cannot schedule {type(layer).__name__}"
            )
    if not atoms:
        raise ConfigurationError("model produced an empty program")
    return atoms


def _numel(shape) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n
