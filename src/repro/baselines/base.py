"""BASE: plain CPU implementation with no intermittence support.

The paper's BASE runs the uncompressed model on the CPU and simply
restarts from scratch after a power failure, so under harvested power it
never completes any inference that exceeds one capacitor charge.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.cpu_plan import build_cpu_program
from repro.rad.quantize import QuantizedModel
from repro.sim.atoms import Atom
from repro.sim.runtime import InferenceRuntime


class BaseRuntime(InferenceRuntime):
    """Uncompressed, CPU-only, checkpoint-free inference."""

    name = "BASE"
    commit_enabled = False
    snapshot_on_warning = False

    def __init__(self, qmodel: QuantizedModel) -> None:
        self.qmodel = qmodel
        self._atoms = None

    def build_atoms(self) -> List[Atom]:
        if self._atoms is None:
            self._atoms = build_cpu_program(self.qmodel, sonic=False)
        return self._atoms

    def compute_logits(self, x: np.ndarray) -> np.ndarray:
        return self.qmodel.forward(np.asarray(x)[None, ...])[0]

    def compute_logits_batch(self, xs: np.ndarray) -> np.ndarray:
        # Integer kernels: batched rows are bit-identical to per-sample runs.
        return self.qmodel.forward(np.asarray(xs))

    def restore_words(self) -> int:
        return 0
