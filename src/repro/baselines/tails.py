"""TAILS (Gobieski et al., ASPLOS'19): SONIC's task structure plus
hardware acceleration.

TAILS moves vector work onto the LEA with DMA staging and checkpoints
loop indices after each vector operation's writeback.  Because only loop
indices are saved, any state still in accelerator SRAM when power fails
is lost: the atoms between DMA-in and writeback are not durable, and the
runtime rolls back to the start of the in-flight vector operation — the
behaviour Figure 6 (left) illustrates for FFT pipelines.

TAILS runs the dense backbone (no BCM): the paper introduces BCM-aware
checkpointing precisely because TAILS cannot resume inside
FFT->MPY->IFFT chains.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ace.plan import PlanConfig, build_program
from repro.hw import constants as C
from repro.rad.quantize import QuantizedModel
from repro.sim.atoms import Atom
from repro.sim.runtime import InferenceRuntime


class TailsRuntime(InferenceRuntime):
    """LEA-accelerated, loop-index-checkpointed inference."""

    name = "TAILS"
    commit_enabled = True
    snapshot_on_warning = False

    def __init__(self, qmodel: QuantizedModel, *, use_dma: bool = True) -> None:
        self.qmodel = qmodel
        self.use_dma = use_dma
        self._atoms = None

    def build_atoms(self) -> List[Atom]:
        if self._atoms is None:
            cfg = PlanConfig(
                use_dma=self.use_dma,
                commit=True,
                commit_words=C.TAILS_COMMIT_WORDS,
                bcm_stage_commits=False,  # loop indices only (Figure 6 left)
                conv_staging="window",  # per-vector-op staging, no row reuse
                task_overhead_cycles=C.TAILS_TASK_CYCLES,
                batched_ops=False,  # one task (and LEA setup) per vector op
            )
            self._atoms = build_program(self.qmodel, cfg)
        return self._atoms

    def compute_logits(self, x: np.ndarray) -> np.ndarray:
        return self.qmodel.forward(np.asarray(x)[None, ...])[0]

    def compute_logits_batch(self, xs: np.ndarray) -> np.ndarray:
        # Integer kernels: batched rows are bit-identical to per-sample runs.
        return self.qmodel.forward(np.asarray(xs))

    def restore_words(self) -> int:
        return C.TAILS_COMMIT_WORDS
