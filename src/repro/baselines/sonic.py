"""SONIC (Gobieski et al., ASPLOS'19): loop-continuation intermittent
inference.

SONIC decomposes the DNN into tasks whose loop-heavy bodies save their
control state (loop indices) to nonvolatile memory after *every*
iteration, with redo logging for written data.  That makes every
iteration durable — SONIC resumes within one iteration of the failure
point — at the price of substantial per-iteration overhead, which is why
it is the slowest and most energy-hungry runtime in Figure 7.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.cpu_plan import build_cpu_program
from repro.hw import constants as C
from repro.rad.quantize import QuantizedModel
from repro.sim.atoms import Atom
from repro.sim.runtime import InferenceRuntime


class SonicRuntime(InferenceRuntime):
    """Software-only intermittence-safe inference."""

    name = "SONIC"
    commit_enabled = True
    snapshot_on_warning = False

    def __init__(self, qmodel: QuantizedModel) -> None:
        self.qmodel = qmodel
        self._atoms = None

    def build_atoms(self) -> List[Atom]:
        if self._atoms is None:
            self._atoms = build_cpu_program(self.qmodel, sonic=True)
        return self._atoms

    def compute_logits(self, x: np.ndarray) -> np.ndarray:
        return self.qmodel.forward(np.asarray(x)[None, ...])[0]

    def compute_logits_batch(self, xs: np.ndarray) -> np.ndarray:
        # Integer kernels: batched rows are bit-identical to per-sample runs.
        return self.qmodel.forward(np.asarray(xs))

    def restore_words(self) -> int:
        return C.SONIC_LOOP_FRAM_WORDS
