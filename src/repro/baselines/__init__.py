"""The paper's comparison runtimes: BASE, SONIC, TAILS."""

from repro.baselines.base import BaseRuntime
from repro.baselines.cpu_plan import build_cpu_program
from repro.baselines.sonic import SonicRuntime
from repro.baselines.tails import TailsRuntime

__all__ = ["BaseRuntime", "SonicRuntime", "TailsRuntime", "build_cpu_program"]
