"""Self-contained numpy DNN training framework used by RAD.

Provides layer-level backprop (gradient-checked in tests), classic
optimizers, and a :class:`~repro.nn.model.Sequential` container with a
training loop whose hooks support ADMM-regularized pruning.
"""

from repro.nn.data import Dataset, train_test_split
from repro.nn.fuse import fuse_batchnorm
from repro.nn.layers import (
    BCMDense,
    BatchNorm1d,
    BatchNorm2d,
    Dropout,
    Conv2D,
    CosineDense,
    Dense,
    Flatten,
    HardClip,
    MaxPool2D,
    ReLU,
    Tanh,
)
from repro.nn.losses import MSELoss, SoftmaxCrossEntropy, softmax
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.model import Sequential, evaluate_accuracy, fit
from repro.nn.module import (
    Layer,
    Parameter,
    nonzero_parameter_count,
    parameter_count,
    zero_grads,
)
from repro.nn.optim import Adam, SGD
from repro.nn.schedule import CosineDecay, Scheduler, StepDecay, WarmupWrapper

__all__ = [
    "Adam",
    "BCMDense",
    "BatchNorm1d",
    "BatchNorm2d",
    "CosineDecay",
    "Dropout",
    "Scheduler",
    "StepDecay",
    "WarmupWrapper",
    "fuse_batchnorm",
    "Conv2D",
    "CosineDense",
    "Dataset",
    "Dense",
    "Flatten",
    "HardClip",
    "Layer",
    "MSELoss",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "SoftmaxCrossEntropy",
    "Tanh",
    "accuracy",
    "confusion_matrix",
    "evaluate_accuracy",
    "fit",
    "nonzero_parameter_count",
    "parameter_count",
    "softmax",
    "top_k_accuracy",
    "train_test_split",
    "zero_grads",
]
