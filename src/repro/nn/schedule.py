"""Learning-rate schedules.

A scheduler mutates its optimizer's ``lr`` when stepped; wire it into
:func:`repro.nn.model.fit` through the ``on_epoch_end`` hook::

    sched = StepDecay(opt, step_epochs=5, factor=0.5)
    fit(model, x, y, optimizer=opt,
        on_epoch_end=lambda epoch, loss: sched.step(epoch))
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.nn.optim import Optimizer


class Scheduler:
    """Base: remembers the optimizer and its initial learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self, epoch: int) -> float:
        """Set the learning rate for the epoch *after* ``epoch``."""
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        new_lr = self.lr_at(epoch + 1)
        self.optimizer.lr = new_lr
        return new_lr


class StepDecay(Scheduler):
    """Multiply the learning rate by ``factor`` every ``step_epochs``."""

    def __init__(self, optimizer: Optimizer, *, step_epochs: int = 10,
                 factor: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_epochs <= 0:
            raise ConfigurationError("step_epochs must be positive")
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError("factor must be in (0, 1]")
        self.step_epochs = step_epochs
        self.factor = factor

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.factor ** (epoch // self.step_epochs)


class CosineDecay(Scheduler):
    """Cosine annealing from the base rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, *, total_epochs: int,
                 min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ConfigurationError("total_epochs must be positive")
        if min_lr < 0:
            raise ConfigurationError("min_lr must be non-negative")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * t)
        )


class WarmupWrapper(Scheduler):
    """Linear warmup for the first ``warmup_epochs``, then delegate."""

    def __init__(self, inner: Scheduler, *, warmup_epochs: int = 3) -> None:
        super().__init__(inner.optimizer)
        if warmup_epochs <= 0:
            raise ConfigurationError("warmup_epochs must be positive")
        self.inner = inner
        self.warmup_epochs = warmup_epochs

    def lr_at(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        return self.inner.lr_at(epoch - self.warmup_epochs)
