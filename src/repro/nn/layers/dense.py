"""Fully connected layers: plain dense and cosine-normalized dense.

The cosine-normalized variant implements the normalization step of RAD
(Section III-A of the paper, after Luo et al., ICANN'18): the dot product is
replaced by cosine similarity so pre-activations are guaranteed to lie in
``[-1, 1]``, which is what lets ACE run the layer in Q15 without overflow.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Layer, Parameter


class Dense(Layer):
    """Affine layer ``y = x @ W.T + b`` with input shape ``(N, in_features)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("Dense dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            he_normal(rng, (out_features, in_features), fan_in=in_features),
            name="dense.weight",
        )
        self.bias = Parameter(zeros(out_features), name="dense.bias") if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"Dense expects (N, {self.in_features}), got {x.shape}"
            )
        self._x = x
        y = x @ self.weight.data.T
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ConfigurationError("backward called before forward")
        self.weight.grad += grad_out.T @ self._x
        self.weight.apply_mask()
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape):
        return (self.out_features,)

    def __repr__(self) -> str:
        return f"Dense({self.in_features} -> {self.out_features})"


class CosineDense(Layer):
    """Cosine-normalized dense layer: ``y_i = g * (w_i . x) / (|w_i| |x|)``.

    ``g`` is a learnable per-unit gain initialized to 1; with ``g`` clamped
    by the RAD pipeline to ``<= 1`` the outputs stay inside ``[-1, 1]``.
    """

    EPS = 1e-8

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("CosineDense dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            he_normal(rng, (out_features, in_features), fan_in=in_features),
            name="cosine.weight",
        )
        self.gain = Parameter(np.ones(out_features), name="cosine.gain")
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"CosineDense expects (N, {self.in_features}), got {x.shape}"
            )
        w = self.weight.data
        x_norm = np.linalg.norm(x, axis=1, keepdims=True) + self.EPS  # (N, 1)
        w_norm = np.linalg.norm(w, axis=1) + self.EPS  # (O,)
        dots = x @ w.T  # (N, O)
        cos = dots / (x_norm * w_norm)
        self._cache = (x, x_norm, w_norm, dots, cos)
        return cos * self.gain.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        x, x_norm, w_norm, dots, cos = self._cache
        w = self.weight.data
        g = self.gain.data

        self.gain.grad += (grad_out * cos).sum(axis=0)
        gc = grad_out * g  # dL/dcos, (N, O)

        denom = x_norm * w_norm  # (N, O) by broadcast
        # dcos/dw_i = x / (|x||w_i|) - dots * w_i / (|x| |w_i|^3)
        self.weight.grad += (gc / denom).T @ x
        coeff = (gc * dots / x_norm).sum(axis=0) / (w_norm ** 3)  # (O,)
        self.weight.grad -= coeff[:, None] * w
        self.weight.apply_mask()

        # dcos/dx = w_i / (|x||w_i|) - dots * x / (|x|^3 |w_i|)
        grad_x = (gc / denom) @ w
        coeff_x = (gc * dots / w_norm).sum(axis=1, keepdims=True) / (x_norm ** 3)
        grad_x -= coeff_x * x
        return grad_x

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.gain]

    def output_shape(self, input_shape):
        return (self.out_features,)

    def __repr__(self) -> str:
        return f"CosineDense({self.in_features} -> {self.out_features})"
