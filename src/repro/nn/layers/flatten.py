"""Flatten layer bridging conv feature maps and fully connected layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Layer


class Flatten(Layer):
    """Collapse all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ConfigurationError("backward called before forward")
        return np.asarray(grad_out).reshape(self._shape)

    def output_shape(self, input_shape):
        size = 1
        for d in input_shape:
            size *= int(d)
        return (size,)
