"""Batch normalization (1-D and 2-D).

BatchNorm cannot run on the device as-is (it would need float statistics),
but it trains better backbones; :func:`repro.nn.fuse.fuse_batchnorm` folds
trained BN layers into the preceding conv/dense weights so the deployed
model is BN-free — the standard production path to fixed-point inference.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Layer, Parameter


class _BatchNormBase(Layer):
    """Shared machinery; subclasses define the reduction axes."""

    def __init__(self, num_features: int, *, momentum: float = 0.9,
                 eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ConfigurationError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="bn.gamma")
        self.beta = Parameter(np.zeros(num_features), name="bn.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = None

    def _axes(self, x: np.ndarray) -> Tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: np.ndarray) -> Tuple[int, ...]:
        """Broadcast shape of per-feature vectors against ``x``."""
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        axes = self._axes(x)
        shape = self._shape(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
        self._cache = (x_hat, inv_std, axes, shape, x.shape)
        return self.gamma.data.reshape(shape) * x_hat + self.beta.data.reshape(shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        x_hat, inv_std, axes, shape, x_shape = self._cache
        g = np.asarray(grad_out, dtype=np.float64)
        self.gamma.grad += (g * x_hat).sum(axis=axes)
        self.beta.grad += g.sum(axis=axes)
        if not self.training:
            return g * (self.gamma.data * inv_std).reshape(shape)
        # Standard train-mode gradient through the batch statistics.
        m = g.size / self.num_features
        g_hat = g * self.gamma.data.reshape(shape)
        term1 = g_hat
        term2 = g_hat.sum(axis=axes, keepdims=True) / m
        term3 = x_hat * (g_hat * x_hat).sum(axis=axes, keepdims=True) / m
        return (term1 - term2 - term3) * inv_std.reshape(shape)

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def folded_scale_shift(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-feature (scale, shift) equivalent of this BN in eval mode:
        ``y = scale * x + shift``."""
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - self.running_mean * scale
        return scale, shift


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over ``(N, F)`` activations."""

    def _axes(self, x):
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ConfigurationError(
                f"BatchNorm1d expects (N, {self.num_features}), got {x.shape}"
            )
        return (0,)

    def _shape(self, x):
        return (1, self.num_features)

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over ``(N, C, H, W)`` activations (per channel)."""

    def _axes(self, x):
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ConfigurationError(
                f"BatchNorm2d expects (N, {self.num_features}, H, W), "
                f"got {x.shape}"
            )
        return (0, 2, 3)

    def _shape(self, x):
        return (1, self.num_features, 1, 1)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"
