"""2-D convolution via im2col, with structured-pruning mask support.

Inputs are NCHW.  Only "valid" convolutions with unit dilation are
implemented — the paper's three models (Table II) use 5x5 and 1x12 valid
kernels exclusively, so padding support would be dead code on this target.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Layer, Parameter


def im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Unfold NCHW input into ``(N, out_h * out_w, C * kh * kw)`` patches."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    # (N, out_h, out_w, C, kh, kw) -> (N, out_h*out_w, C*kh*kw)
    patches = patches.transpose(0, 2, 3, 1, 4, 5)
    return patches.reshape(n, out_h * out_w, c * kh * kw).copy()


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
) -> np.ndarray:
    """Fold ``(N, out_h*out_w, C*kh*kw)`` patch gradients back to NCHW."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    grad = np.zeros(x_shape, dtype=np.float64)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            grad[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    return grad


class Conv2D(Layer):
    """Valid 2-D convolution: ``(N, C_in, H, W) -> (N, C_out, H', W')``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        *,
        stride: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        kh, kw = kernel_size
        if min(in_channels, out_channels, kh, kw, stride) <= 0:
            raise ConfigurationError("Conv2D dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        fan_in = in_channels * kh * kw
        self.weight = Parameter(
            he_normal(rng, (out_channels, in_channels, kh, kw), fan_in=fan_in),
            name="conv.weight",
        )
        self.bias = Parameter(zeros(out_channels), name="conv.bias") if bias else None
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ConfigurationError(
                f"Conv2D expects (N, {self.in_channels}, H, W), got {x.shape}"
            )
        kh, kw = self.kernel_size
        n, _, h, w = x.shape
        if h < kh or w < kw:
            raise ConfigurationError(
                f"input {h}x{w} smaller than kernel {kh}x{kw}"
            )
        out_h = (h - kh) // self.stride + 1
        out_w = (w - kw) // self.stride + 1
        cols = im2col(x, kh, kw, self.stride)  # (N, P, C*kh*kw)
        w_mat = self.weight.data.reshape(self.out_channels, -1)  # (O, C*kh*kw)
        y = cols @ w_mat.T  # (N, P, O)
        if self.bias is not None:
            y = y + self.bias.data
        self._cache = (x.shape, cols)
        return y.transpose(0, 2, 1).reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        x_shape, cols = self._cache
        n = x_shape[0]
        kh, kw = self.kernel_size
        g = grad_out.reshape(n, self.out_channels, -1).transpose(0, 2, 1)  # (N, P, O)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        # dW: sum over batch and positions.
        grad_w = np.einsum("npo,npk->ok", g, cols)
        self.weight.grad += grad_w.reshape(self.weight.data.shape)
        self.weight.apply_mask()
        if self.bias is not None:
            self.bias.grad += g.sum(axis=(0, 1))
        grad_cols = g @ w_mat  # (N, P, C*kh*kw)
        return col2im(grad_cols, x_shape, kh, kw, self.stride)

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape):
        c, h, w = input_shape
        if c != self.in_channels:
            raise ConfigurationError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        kh, kw = self.kernel_size
        return (
            self.out_channels,
            (h - kh) // self.stride + 1,
            (w - kw) // self.stride + 1,
        )

    def __repr__(self) -> str:
        kh, kw = self.kernel_size
        return (
            f"Conv2D({self.in_channels} -> {self.out_channels}, "
            f"kernel={kh}x{kw}, stride={self.stride})"
        )
