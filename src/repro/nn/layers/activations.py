"""Elementwise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Layer


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward called before forward")
        return grad_out * self._mask


class Tanh(Layer):
    """Hyperbolic tangent — keeps activations in [-1, 1], which is handy
    ahead of Q15 quantization (used by RAD's normalization stage)."""

    def __init__(self) -> None:
        super().__init__()
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(np.asarray(x, dtype=np.float64))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise ConfigurationError("backward called before forward")
        return grad_out * (1.0 - self._y ** 2)


class HardClip(Layer):
    """Clamp activations into ``[-limit, limit]``.

    RAD's range normalization uses this during quantization-aware
    fine-tuning so training sees exactly the range the device can represent.
    """

    def __init__(self, limit: float = 1.0) -> None:
        super().__init__()
        if limit <= 0:
            raise ConfigurationError("clip limit must be positive")
        self.limit = float(limit)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = np.abs(x) <= self.limit
        return np.clip(x, -self.limit, self.limit)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward called before forward")
        return grad_out * self._mask

    def __repr__(self) -> str:
        return f"HardClip(±{self.limit})"
