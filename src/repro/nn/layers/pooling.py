"""Max pooling.

The paper's models use non-overlapping 2x2 max pooling executed on the CPU
(Figure 3); this implementation supports any non-overlapping window whose
size divides the feature map.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Layer


class MaxPool2D(Layer):
    """Non-overlapping max pooling over NCHW inputs."""

    def __init__(self, pool_size=2) -> None:
        super().__init__()
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        ph, pw = pool_size
        if ph <= 0 or pw <= 0:
            raise ConfigurationError("pool_size must be positive")
        self.pool_size = (ph, pw)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ConfigurationError(f"MaxPool2D expects NCHW, got shape {x.shape}")
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        if h % ph or w % pw:
            raise ConfigurationError(
                f"feature map {h}x{w} not divisible by pool {ph}x{pw}"
            )
        oh, ow = h // ph, w // pw
        windows = x.reshape(n, c, oh, ph, ow, pw)
        out = windows.max(axis=(3, 5))
        # Record which element won each window for routing gradients.
        mask = windows == out[:, :, :, None, :, None]
        # Break ties deterministically: keep only the first max per window.
        flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, ph * pw)
        first = np.cumsum(flat, axis=-1) == 1
        flat &= first
        mask = flat.reshape(n, c, oh, ow, ph, pw).transpose(0, 1, 2, 4, 3, 5)
        self._cache = (x.shape, mask)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        x_shape, mask = self._cache
        n, c, h, w = x_shape
        ph, pw = self.pool_size
        oh, ow = h // ph, w // pw
        grad = mask * grad_out[:, :, :, None, :, None]
        return grad.reshape(n, c, h, w)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        ph, pw = self.pool_size
        if h % ph or w % pw:
            raise ConfigurationError(
                f"feature map {h}x{w} not divisible by pool {ph}x{pw}"
            )
        return (c, h // ph, w // pw)

    def __repr__(self) -> str:
        ph, pw = self.pool_size
        return f"MaxPool2D({ph}x{pw})"
