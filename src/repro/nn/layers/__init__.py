"""Layer implementations."""

from repro.nn.layers.activations import HardClip, ReLU, Tanh
from repro.nn.layers.batchnorm import BatchNorm1d, BatchNorm2d
from repro.nn.layers.bcm_dense import BCMDense
from repro.nn.layers.conv import Conv2D, col2im, im2col
from repro.nn.layers.dense import CosineDense, Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.pooling import MaxPool2D

__all__ = [
    "BCMDense",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "Conv2D",
    "CosineDense",
    "Dense",
    "Flatten",
    "HardClip",
    "MaxPool2D",
    "ReLU",
    "Tanh",
    "col2im",
    "im2col",
]
