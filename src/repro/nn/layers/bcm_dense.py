"""Block-circulant fully connected layer (the heart of RAD's compression).

A ``BCMDense`` partitions the dense weight matrix ``W (out x in)`` into a
``p x q`` grid of ``k x k`` circulant blocks (``p = out/k``, ``q = in/k``).
Each block is fully described by its first column ``w_pq`` (``k`` numbers
instead of ``k**2``), giving a ``k``-fold parameter reduction, and the
block matrix-vector product becomes FFT -> elementwise multiply -> IFFT
(CirCNN, MICRO'17), which is exactly what the LEA accelerator executes on
device (ACE Algorithm 1).

Convention: block ``W_pq`` is the circulant matrix with first *column*
``w_pq``, i.e. ``W_pq[i, j] = w_pq[(i - j) mod k]``, so ``W_pq @ x``
is the circular convolution ``w_pq (*) x = ifft(fft(w_pq) * fft(x))``.

Training runs in float with ``numpy.fft``; gradients are the standard
frequency-domain adjoints (verified by numerical gradient checks).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.spectra import weight_spectra
from repro.nn.initializers import circulant_spectral, zeros
from repro.nn.module import Layer, Parameter


class BCMDense(Layer):
    """FFT-based block-circulant dense layer: ``(N, in) -> (N, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        block_size: int,
        *,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("BCMDense dimensions must be positive")
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ConfigurationError(
                f"block_size must be a power of two (LEA FFT), got {block_size}"
            )
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.block_size = block_size
        # Non-divisible dimensions are zero-padded to whole blocks
        # (CirCNN's convention); padded outputs are sliced away.
        self.p = -(-out_features // block_size)
        self.q = -(-in_features // block_size)
        self.in_padded = self.q * block_size
        self.out_padded = self.p * block_size
        self.weight = Parameter(
            circulant_spectral(rng, self.p, self.q, block_size), name="bcm.weight"
        )
        self.bias = Parameter(zeros(out_features), name="bcm.bias") if bias else None
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"BCMDense expects (N, {self.in_features}), got {x.shape}"
            )
        n = x.shape[0]
        k = self.block_size
        if self.in_padded != self.in_features:
            x = np.concatenate(
                [x, np.zeros((n, self.in_padded - self.in_features))], axis=1
            )
        xb = x.reshape(n, self.q, k)
        fx = np.fft.fft(xb, axis=-1)  # (N, q, k)
        # Content-addressed cache: hits while weights are frozen
        # (inference), recomputes after every optimizer step (training).
        fw = weight_spectra(self.weight.data)  # (p, q, k)
        fy = np.einsum("pqk,nqk->npk", fw, fx)  # (N, p, k)
        y = np.fft.ifft(fy, axis=-1).real.reshape(n, self.out_padded)
        y = y[:, : self.out_features]
        if self.bias is not None:
            y = y + self.bias.data
        self._cache = (fx, fw, n)
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        fx, fw, n = self._cache
        k = self.block_size
        gy = np.asarray(grad_out, dtype=np.float64)
        if self.out_padded != self.out_features:
            gy = np.concatenate(
                [gy, np.zeros((n, self.out_padded - self.out_features))], axis=1
            )
        gy = gy.reshape(n, self.p, k)
        fgy = np.fft.fft(gy, axis=-1)  # (N, p, k)
        # grad_w[p,q] = ifft(conj(fft(x_q)) * fft(dy_p)) summed over batch.
        fgw = np.einsum("nqk,npk->pqk", np.conj(fx), fgy)
        self.weight.grad += np.fft.ifft(fgw, axis=-1).real
        self.weight.apply_mask()
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        # grad_x[q] = ifft(conj(fft(w_pq)) * fft(dy_p)) summed over p.
        fgx = np.einsum("pqk,npk->nqk", np.conj(fw), fgy)
        grad_x = np.fft.ifft(fgx, axis=-1).real
        return grad_x.reshape(n, self.in_padded)[:, : self.in_features]

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape):
        return (self.out_features,)

    def weights_full(self) -> np.ndarray:
        """Materialize the dense ``(out, in)`` matrix (tests and baselines)."""
        k = self.block_size
        full = np.zeros((self.out_padded, self.in_padded))
        idx = (np.arange(k)[:, None] - np.arange(k)[None, :]) % k
        for bp in range(self.p):
            for bq in range(self.q):
                block = self.weight.data[bp, bq][idx]
                full[bp * k : (bp + 1) * k, bq * k : (bq + 1) * k] = block
        return full[: self.out_features, : self.in_features]

    def compression_ratio(self) -> float:
        """Parameter reduction versus a dense layer (equals block_size)."""
        dense = self.in_features * self.out_features
        return dense / self.weight.size

    def __repr__(self) -> str:
        return (
            f"BCMDense({self.in_features} -> {self.out_features}, "
            f"block={self.block_size})"
        )
