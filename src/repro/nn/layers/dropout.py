"""Inverted dropout (training-time regularization; identity at inference)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Layer


class Dropout(Layer):
    """Zero each activation with probability ``p`` during training,
    scaling survivors by ``1/(1-p)`` so inference needs no correction."""

    def __init__(self, p: float = 0.5, *, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_out)
        return np.asarray(grad_out) * self._mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
