"""Layer fusion for deployment.

:func:`fuse_batchnorm` folds trained BatchNorm layers into the directly
preceding Conv2D/Dense weights (standard conv-BN fusion), and drops
Dropout layers, producing a model whose eval-mode function is identical
but which contains only device-quantizable layers.
"""

from __future__ import annotations

from typing import List


from repro.errors import ConfigurationError
from repro.nn.layers.batchnorm import BatchNorm1d, BatchNorm2d
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.model import Sequential


def _fold_into_conv(conv: Conv2D, bn: BatchNorm2d) -> None:
    if bn.num_features != conv.out_channels:
        raise ConfigurationError(
            f"BatchNorm2d({bn.num_features}) does not match "
            f"Conv2D out_channels={conv.out_channels}"
        )
    scale, shift = bn.folded_scale_shift()
    conv.weight.data *= scale[:, None, None, None]
    if conv.bias is None:
        raise ConfigurationError(
            "conv-BN fusion requires the conv layer to have a bias"
        )
    conv.bias.data *= scale
    conv.bias.data += shift
    if conv.weight.mask is not None:
        conv.weight.apply_mask()


def _fold_into_dense(dense: Dense, bn: BatchNorm1d) -> None:
    if bn.num_features != dense.out_features:
        raise ConfigurationError(
            f"BatchNorm1d({bn.num_features}) does not match "
            f"Dense out_features={dense.out_features}"
        )
    scale, shift = bn.folded_scale_shift()
    dense.weight.data *= scale[:, None]
    if dense.bias is None:
        raise ConfigurationError(
            "dense-BN fusion requires the dense layer to have a bias"
        )
    dense.bias.data *= scale
    dense.bias.data += shift


def fuse_batchnorm(model: Sequential) -> Sequential:
    """Return a new Sequential with BN folded and Dropout removed.

    The input model's layers are reused in place for non-fused layers
    (weights are shared, not copied); fused conv/dense layers have their
    parameters modified.  Only BN layers *immediately* following a
    Conv2D/Dense are fusable; any other placement raises.
    """
    fused: List = []
    i = 0
    layers = model.layers
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        if isinstance(nxt, BatchNorm2d):
            if not isinstance(layer, Conv2D):
                raise ConfigurationError(
                    "BatchNorm2d must directly follow a Conv2D to be fused"
                )
            _fold_into_conv(layer, nxt)
            fused.append(layer)
            i += 2
            continue
        if isinstance(nxt, BatchNorm1d):
            if not isinstance(layer, Dense):
                raise ConfigurationError(
                    "BatchNorm1d must directly follow a Dense to be fused"
                )
            _fold_into_dense(layer, nxt)
            fused.append(layer)
            i += 2
            continue
        if isinstance(layer, (BatchNorm1d, BatchNorm2d)):
            raise ConfigurationError(
                "found a BatchNorm with no preceding conv/dense to fuse into"
            )
        if isinstance(layer, Dropout):
            i += 1
            continue
        fused.append(layer)
        i += 1
    return Sequential(fused, name=f"{model.name}-fused")
