"""Optimizers: SGD (with momentum / weight decay) and Adam.

Both respect parameter pruning masks — after every step the masks are
re-applied so structurally pruned weights stay exactly zero.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ConfigurationError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        for p in self.params:
            p.apply_mask()


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ConfigurationError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * g
            p.data += v
        self._finish()


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.b1 ** self._t
        bc2 = 1.0 - self.b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
        self._finish()
