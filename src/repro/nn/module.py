"""Layer and parameter abstractions for the numpy DNN framework.

The framework is deliberately minimal: a :class:`Layer` owns
:class:`Parameter` objects, implements ``forward`` and ``backward``
(layer-level backprop, no autograd tape), and exposes its parameters to the
optimizers in :mod:`repro.nn.optim`.  Gradient correctness of every layer is
pinned by numerical gradient checks in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ConfigurationError


class Parameter:
    """A trainable tensor with its gradient and an optional pruning mask.

    The mask supports RAD's structured pruning: when set, it is applied
    multiplicatively to ``data`` on every forward pass (handled by the owning
    layer) and to ``grad`` after every backward pass, so masked weights stay
    exactly zero through further training.
    """

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.mask: Optional[np.ndarray] = None

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def set_mask(self, mask: np.ndarray) -> None:
        """Install a binary pruning mask and immediately apply it."""
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != self.data.shape:
            raise ConfigurationError(
                f"mask shape {mask.shape} != parameter shape {self.data.shape}"
            )
        self.mask = mask
        self.data *= mask

    def apply_mask(self) -> None:
        """Re-zero masked entries of data and grad (no-op without a mask)."""
        if self.mask is not None:
            self.data *= self.mask
            self.grad *= self.mask

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.data.shape})"


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``, accumulating
        parameter gradients along the way."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this layer (empty by default)."""
        return []

    def train_mode(self, flag: bool = True) -> None:
        self.training = flag

    def output_shape(self, input_shape):
        """Shape of the output given an input shape (both without batch dim).

        Subclasses override; the default assumes shape preservation.
        """
        return tuple(input_shape)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return self.__class__.__name__


def zero_grads(params: Iterable[Parameter]) -> None:
    """Zero the gradient of every parameter in ``params``."""
    for p in params:
        p.zero_grad()


def parameter_count(params: Iterable[Parameter]) -> int:
    """Total number of scalar weights across ``params``."""
    return sum(p.size for p in params)


def nonzero_parameter_count(params: Iterable[Parameter]) -> int:
    """Number of weights that survive pruning (mask-aware)."""
    total = 0
    for p in params:
        if p.mask is not None:
            total += int(np.count_nonzero(p.mask))
        else:
            total += p.size
    return total


def state_dict(params: Iterable[Parameter]) -> Dict[str, np.ndarray]:
    """Collect parameter data into a name->array dict (for save/load)."""
    out: Dict[str, np.ndarray] = {}
    for i, p in enumerate(params):
        out[f"{i}:{p.name}"] = p.data
    return out
