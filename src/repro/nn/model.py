"""Sequential model container with training loop, save/load and summaries."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.module import Layer, Parameter, parameter_count, nonzero_parameter_count


class Sequential(Layer):
    """A chain of layers executed in order."""

    def __init__(self, layers: Sequence[Layer], name: str = "model") -> None:
        super().__init__()
        if not layers:
            raise ConfigurationError("Sequential needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def train_mode(self, flag: bool = True) -> None:
        super().train_mode(flag)
        for layer in self.layers:
            layer.train_mode(flag)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions (argmax of logits), batched for memory."""
        self.train_mode(False)
        outputs = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(np.asarray(x[start : start + batch_size]))
            outputs.append(np.argmax(logits, axis=1))
        self.train_mode(True)
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=int)

    def parameter_count(self) -> int:
        return parameter_count(self.parameters())

    def nonzero_parameter_count(self) -> int:
        return nonzero_parameter_count(self.parameters())

    def summary(self) -> str:
        lines = [f"Sequential '{self.name}':"]
        for i, layer in enumerate(self.layers):
            n_params = parameter_count(layer.parameters())
            lines.append(f"  [{i:2d}] {layer!r}  params={n_params}")
        lines.append(f"  total params: {self.parameter_count()}")
        return "\n".join(lines)

    # -- persistence --------------------------------------------------------

    def save_weights(self, path: str) -> None:
        """Save parameter data (and masks) to an ``.npz`` file."""
        payload: Dict[str, np.ndarray] = {}
        for i, p in enumerate(self.parameters()):
            payload[f"p{i}"] = p.data
            if p.mask is not None:
                payload[f"m{i}"] = p.mask
        np.savez(path, **payload)

    def load_weights(self, path: str) -> None:
        """Load parameters saved by :meth:`save_weights` (shapes must match)."""
        with np.load(path) as archive:
            for i, p in enumerate(self.parameters()):
                key = f"p{i}"
                if key not in archive:
                    raise ConfigurationError(f"missing parameter {key} in {path}")
                data = archive[key]
                if data.shape != p.data.shape:
                    raise ConfigurationError(
                        f"shape mismatch for {key}: saved {data.shape}, "
                        f"model {p.data.shape}"
                    )
                p.data[...] = data
                mkey = f"m{i}"
                if mkey in archive:
                    p.set_mask(archive[mkey])


def fit(
    model: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    *,
    epochs: int = 5,
    batch_size: int = 32,
    optimizer=None,
    loss_fn=None,
    rng: Optional[np.random.Generator] = None,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    patience: Optional[int] = None,
    on_epoch_end: Optional[Callable[[int, float], None]] = None,
    extra_grad: Optional[Callable[[], None]] = None,
    val_history: Optional[List[float]] = None,
) -> List[float]:
    """Train ``model`` with minibatch SGD; returns per-epoch mean losses.

    With a validation set (``x_val``/``y_val``), per-epoch validation
    accuracy is appended to ``val_history`` (if a list is supplied) and
    ``patience`` enables early stopping: training halts once validation
    accuracy has not improved for that many consecutive epochs, and the
    best-epoch weights are restored.

    ``extra_grad`` is a hook invoked after the backward pass and before the
    optimizer step — RAD's ADMM regularizer uses it to add its proximal
    gradient term.
    """
    from repro.nn.optim import SGD  # local import avoids cycle at module load

    rng = rng or np.random.default_rng(0)
    optimizer = optimizer or SGD(model.parameters(), lr=0.05, momentum=0.9)
    loss_fn = loss_fn or SoftmaxCrossEntropy()
    n = len(x_train)
    if n == 0:
        raise ConfigurationError("empty training set")
    has_val = x_val is not None and y_val is not None
    if patience is not None and not has_val:
        raise ConfigurationError("early stopping needs a validation set")
    if patience is not None and patience < 1:
        raise ConfigurationError("patience must be >= 1")

    history: List[float] = []
    best_acc = -1.0
    best_weights: Optional[List[np.ndarray]] = None
    stale = 0
    for epoch in range(epochs):
        order = rng.permutation(n)
        losses = []
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            optimizer.zero_grad()
            logits = model.forward(np.asarray(x_train[idx]))
            loss, grad = loss_fn(logits, np.asarray(y_train[idx]))
            model.backward(grad)
            if extra_grad is not None:
                extra_grad()
            optimizer.step()
            losses.append(loss)
        mean_loss = float(np.mean(losses))
        history.append(mean_loss)
        if has_val:
            val_acc = evaluate_accuracy(model, x_val, y_val)
            if val_history is not None:
                val_history.append(val_acc)
            if val_acc > best_acc:
                best_acc = val_acc
                best_weights = [p.data.copy() for p in model.parameters()]
                stale = 0
            else:
                stale += 1
            if patience is not None and stale >= patience:
                break
        if on_epoch_end is not None:
            on_epoch_end(epoch, mean_loss)
    if patience is not None and best_weights is not None:
        for p, w in zip(model.parameters(), best_weights):
            p.data[...] = w
            p.apply_mask()
    return history


def evaluate_accuracy(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the label."""
    preds = model.predict(x)
    return float(np.mean(preds == np.asarray(y)))
