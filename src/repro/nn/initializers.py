"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so every
training run in the test suite and the benchmark harness is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def he_normal(rng: np.random.Generator, shape, fan_in: int) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    if fan_in <= 0:
        raise ConfigurationError(f"fan_in must be positive, got {fan_in}")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def glorot_uniform(rng: np.random.Generator, shape, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ConfigurationError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def circulant_spectral(rng: np.random.Generator, p: int, q: int, k: int) -> np.ndarray:
    """Initialize BCM first-column weights ``(p, q, k)``.

    Each circulant block behaves like a dense ``k x k`` matrix with tied
    weights; the fan-in is ``q * k``, so ``sqrt(2 / (q * k))`` is the He
    scaling that preserves variance through the following ReLU.
    """
    if p <= 0 or q <= 0 or k <= 0:
        raise ConfigurationError("block grid dimensions must be positive")
    return rng.normal(0.0, np.sqrt(2.0 / (q * k)), size=(p, q, k))
