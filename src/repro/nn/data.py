"""Dataset container and batching utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class Dataset:
    """Supervised dataset: features ``x`` and integer labels ``y``."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"x has {len(self.x)} samples but y has {len(self.y)}"
            )
        if self.num_classes <= 1:
            raise ConfigurationError("num_classes must be >= 2")
        y = np.asarray(self.y)
        if y.size and (y.min() < 0 or y.max() >= self.num_classes):
            raise ConfigurationError("labels out of range")

    def __len__(self) -> int:
        return len(self.x)

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        return tuple(np.asarray(self.x).shape[1:])

    def subset(self, n: int, *, rng: Optional[np.random.Generator] = None) -> "Dataset":
        """A random class-stratified-ish subset of ``n`` samples."""
        if n >= len(self):
            return self
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(len(self), size=n, replace=False)
        return Dataset(self.x[idx], self.y[idx], self.num_classes, self.name)

    def batches(
        self,
        batch_size: int,
        *,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(x_batch, y_batch)`` minibatches."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        order = np.arange(len(self))
        if shuffle:
            rng = rng or np.random.default_rng(0)
            rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    num_classes: int,
    *,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
    name: str = "dataset",
) -> Tuple[Dataset, Dataset]:
    """Shuffle and split into train/test datasets."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(x))
    n_test = max(1, int(len(x) * test_fraction))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        Dataset(x[train_idx], y[train_idx], num_classes, f"{name}-train"),
        Dataset(x[test_idx], y[test_idx], num_classes, f"{name}-test"),
    )
