"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def accuracy(preds: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    preds = np.asarray(preds)
    labels = np.asarray(labels)
    if preds.shape != labels.shape:
        raise ConfigurationError(
            f"shape mismatch: preds {preds.shape} vs labels {labels.shape}"
        )
    if preds.size == 0:
        raise ConfigurationError("cannot compute accuracy of empty arrays")
    return float(np.mean(preds == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 3) -> float:
    """Fraction of samples whose label is within the top-k logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or len(logits) != len(labels):
        raise ConfigurationError("logits must be (N, C) matching labels (N,)")
    if not 1 <= k <= logits.shape[1]:
        raise ConfigurationError(f"k must be in [1, {logits.shape[1]}]")
    topk = np.argsort(-logits, axis=1)[:, :k]
    return float(np.mean(np.any(topk == labels[:, None], axis=1)))


def confusion_matrix(preds: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Counts matrix ``M[i, j]`` = samples with label i predicted as j."""
    preds = np.asarray(preds)
    labels = np.asarray(labels)
    if preds.shape != labels.shape:
        raise ConfigurationError("preds and labels must have the same shape")
    mat = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(labels, preds):
        if not (0 <= t < num_classes and 0 <= p < num_classes):
            raise ConfigurationError("class index out of range")
        mat[t, p] += 1
    return mat
