"""Loss functions with analytic gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax + cross entropy against integer class labels."""

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return ``(mean_loss, dL/dlogits)``."""
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ConfigurationError(f"logits must be (N, C), got {logits.shape}")
        n, c = logits.shape
        if labels.shape != (n,):
            raise ConfigurationError(
                f"labels must be ({n},), got {labels.shape}"
            )
        if labels.min() < 0 or labels.max() >= c:
            raise ConfigurationError("labels out of range for logits width")
        probs = softmax(logits)
        picked = probs[np.arange(n), labels]
        loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return loss, grad / n

    def __call__(self, logits, labels):
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error against dense targets."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ConfigurationError(
                f"shape mismatch: pred {pred.shape} vs target {target.shape}"
            )
        diff = pred - target
        loss = float((diff ** 2).mean())
        grad = 2.0 * diff / diff.size
        return loss, grad

    def __call__(self, pred, target):
        return self.forward(pred, target)
