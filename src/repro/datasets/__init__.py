"""Deterministic synthetic datasets standing in for MNIST / UCI-HAR /
Google Speech Commands (see DESIGN.md for the substitution rationale)."""

from repro.datasets.synth_har import ACTIVITY_NAMES, make_har, render_window
from repro.datasets.synth_mnist import make_mnist, render_digit
from repro.datasets.synth_okg import KEYWORDS, make_okg, render_keyword

__all__ = [
    "ACTIVITY_NAMES",
    "KEYWORDS",
    "make_har",
    "make_mnist",
    "make_okg",
    "render_digit",
    "render_keyword",
    "render_window",
]
