"""Synthetic MNIST: stroke-rendered digits 0-9 on a 28x28 grid.

Each digit class has a fixed polyline skeleton (roughly the shapes of the
handwritten digits); per-sample augmentation applies a shared translation,
per-vertex wobble, random stroke thickness, and pixel noise.  The result is
an image-classification task of MNIST's shape and flavour whose difficulty
tracks the ``noise`` and ``wobble`` knobs.

Tensor layout matches the paper's MNIST model (Table II): inputs are
``(N, 1, 28, 28)`` floats in ``[0, 1)``, labels ``0..9``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.common import (
    add_noise,
    balanced_labels,
    check_counts,
    draw_polyline,
    jitter_points,
)
from repro.nn.data import Dataset

IMAGE_SIZE = 28
NUM_CLASSES = 10

# Polyline skeletons in a 28x28 coordinate frame, one or more strokes each.
_DIGIT_STROKES: Dict[int, List[List[Tuple[float, float]]]] = {
    0: [[(14, 5), (9, 8), (8, 14), (9, 20), (14, 23), (19, 20), (20, 14),
         (19, 8), (14, 5)]],
    1: [[(11, 8), (15, 5), (15, 23)], [(11, 23), (19, 23)]],
    2: [[(9, 9), (12, 5), (17, 6), (19, 10), (16, 14), (11, 18), (8, 23),
         (20, 23)]],
    3: [[(9, 6), (16, 5), (19, 9), (15, 13), (19, 17), (16, 22), (9, 22)],
        [(12, 13), (15, 13)]],
    4: [[(16, 5), (8, 17), (21, 17)], [(16, 5), (16, 23)]],
    5: [[(19, 5), (10, 5), (9, 13), (16, 12), (19, 16), (16, 22), (9, 22)]],
    6: [[(17, 5), (11, 9), (9, 16), (11, 22), (16, 22), (19, 18), (16, 14),
         (10, 15)]],
    7: [[(8, 5), (20, 5), (13, 23)], [(11, 14), (17, 14)]],
    8: [[(14, 5), (10, 8), (13, 13), (17, 17), (14, 22), (10, 18), (13, 13),
         (17, 8), (14, 5)]],
    9: [[(18, 13), (12, 14), (9, 10), (12, 5), (17, 6), (18, 13), (16, 23)]],
}


def render_digit(
    digit: int,
    rng: np.random.Generator,
    *,
    wobble: float = 0.7,
    shift: float = 2.0,
    noise: float = 0.08,
) -> np.ndarray:
    """Render one augmented sample of ``digit`` as a 28x28 image."""
    if digit not in _DIGIT_STROKES:
        raise ValueError(f"digit must be 0..9, got {digit}")
    img = np.zeros((IMAGE_SIZE, IMAGE_SIZE))
    thickness = rng.uniform(1.1, 1.8)
    for stroke in _DIGIT_STROKES[digit]:
        pts = jitter_points(stroke, rng, shift=shift, wobble=wobble)
        draw_polyline(img, pts, thickness=thickness)
    return add_noise(img, rng, noise)


def make_mnist(
    n_samples: int = 2000,
    *,
    seed: int = 0,
    wobble: float = 0.7,
    noise: float = 0.08,
) -> Dataset:
    """Generate a synthetic-MNIST dataset of ``(N, 1, 28, 28)`` images."""
    check_counts(n_samples, NUM_CLASSES)
    rng = np.random.default_rng(seed)
    labels = balanced_labels(n_samples, NUM_CLASSES, rng)
    images = np.zeros((n_samples, 1, IMAGE_SIZE, IMAGE_SIZE))
    for i, lab in enumerate(labels):
        images[i, 0] = render_digit(int(lab), rng, wobble=wobble, noise=noise)
    return Dataset(images, labels.astype(np.int64), NUM_CLASSES, name="synth-mnist")
