"""Synthetic keyword-spotting (OKG) spectrogram patches.

Stands in for the Google Speech Commands task (Warden, 2018): 12 classes
(10 keywords + "silence" + "unknown") rendered as 28x28 time-frequency
patches.  Each keyword is a fixed arrangement of two or three formant-like
ridges (sinusoidal tracks in the spectrogram); "silence" is near-empty and
"unknown" draws randomized ridges.  Samples add time shift, frequency
wobble, and noise.

Shapes match the paper's OKG model: inputs ``(N, 1, 28, 28)``; a 5x5 conv
with 6 filters yields ``6 x 24 x 24 = 3456`` features, matching the
``FC 3456x512`` layer of Table II.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.common import add_noise, balanced_labels, check_counts
from repro.nn.data import Dataset

IMAGE_SIZE = 28
NUM_CLASSES = 12

KEYWORDS = (
    "yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go",
    "silence", "unknown",
)

# Each keyword: list of (start_freq, end_freq, curvature, intensity) ridges.
_RIDGES: Dict[int, List[Tuple[float, float, float, float]]] = {
    0: [(5, 9, 2.0, 1.0), (18, 14, -1.0, 0.8)],
    1: [(8, 8, 0.0, 1.0), (20, 23, 1.5, 0.7)],
    2: [(4, 12, 0.0, 1.0), (16, 24, 0.0, 0.9)],
    3: [(12, 4, 0.0, 1.0), (24, 16, 0.0, 0.9)],
    4: [(6, 6, 3.0, 1.0), (14, 22, -2.0, 0.8)],
    5: [(22, 22, -3.0, 1.0), (14, 6, 2.0, 0.8)],
    6: [(10, 18, 1.0, 1.0)],
    7: [(18, 10, -1.0, 1.0)],
    8: [(6, 6, 0.0, 1.0), (12, 12, 0.0, 0.9), (18, 18, 0.0, 0.8)],
    9: [(9, 21, 2.5, 1.0), (21, 9, -2.5, 0.7)],
}


def _render_ridge(img, t, f0, f1, curve, intensity, rng):
    """Draw one formant track across the time axis (one point per column)."""
    h, w = img.shape
    freqs = np.linspace(f0, f1, w) + curve * np.sin(np.pi * t)
    freqs += rng.normal(0.0, 0.2, w)
    rows = np.arange(h)[:, None]
    # Gaussian blob of bandwidth ~1.2 bins around each track point.
    profile = np.exp(-0.5 * ((rows - freqs[None, :]) / 1.2) ** 2)
    np.maximum(img, intensity * profile, out=img)


def render_keyword(label: int, rng: np.random.Generator, *, noise: float = 0.07) -> np.ndarray:
    """Render one 28x28 synthetic spectrogram for class ``label``."""
    if not 0 <= label < NUM_CLASSES:
        raise ValueError(f"label must be 0..11, got {label}")
    img = np.zeros((IMAGE_SIZE, IMAGE_SIZE))
    t = np.linspace(0.0, 1.0, IMAGE_SIZE)
    if label == 10:  # silence: only noise floor
        return add_noise(img, rng, noise * 0.5)
    if label == 11:  # unknown: 1-3 random ridges
        n_ridges = rng.integers(1, 4)
        for _ in range(n_ridges):
            f0, f1 = rng.uniform(4, 24, 2)
            _render_ridge(img, t, f0, f1, rng.uniform(-3, 3), rng.uniform(0.6, 1.0), rng)
        return add_noise(img, rng, noise)
    shift = rng.uniform(-0.6, 0.6)
    for f0, f1, curve, intensity in _RIDGES[label]:
        _render_ridge(
            img, t, f0 + shift, f1 + shift, curve * rng.uniform(0.92, 1.08),
            intensity * rng.uniform(0.92, 1.0), rng,
        )
    return add_noise(img, rng, noise)


def make_okg(n_samples: int = 2400, *, seed: int = 0, noise: float = 0.07) -> Dataset:
    """Generate a synthetic OKG dataset of ``(N, 1, 28, 28)`` spectrograms."""
    check_counts(n_samples, NUM_CLASSES)
    rng = np.random.default_rng(seed)
    labels = balanced_labels(n_samples, NUM_CLASSES, rng)
    x = np.zeros((n_samples, 1, IMAGE_SIZE, IMAGE_SIZE))
    for i, lab in enumerate(labels):
        x[i, 0] = render_keyword(int(lab), rng, noise=noise)
    return Dataset(x, labels.astype(np.int64), NUM_CLASSES, name="synth-okg")
