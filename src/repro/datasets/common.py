"""Shared rendering/synthesis helpers for the synthetic datasets.

The evaluation datasets of the paper (MNIST, UCI-HAR, Google Speech
Commands) are not available offline, so each task is replaced by a
deterministic synthetic generator that (a) produces tensors with exactly the
shapes the paper's Table II models expect, (b) has controllable class
separability so headline accuracies land in the paper's bands, and (c) is
hard enough that compression-induced accuracy loss is measurable.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def draw_segment(
    img: np.ndarray,
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    thickness: float = 1.2,
    intensity: float = 1.0,
) -> None:
    """Draw an anti-aliased line segment into a 2-D image, in place.

    Pixel intensity falls off linearly with distance from the segment,
    reaching zero at ``thickness``.
    """
    h, w = img.shape
    ys, xs = np.mgrid[0:h, 0:w]
    x0, y0 = p0
    x1, y1 = p1
    dx, dy = x1 - x0, y1 - y0
    seg_len2 = dx * dx + dy * dy
    if seg_len2 < 1e-12:
        dist = np.hypot(xs - x0, ys - y0)
    else:
        t = ((xs - x0) * dx + (ys - y0) * dy) / seg_len2
        t = np.clip(t, 0.0, 1.0)
        dist = np.hypot(xs - (x0 + t * dx), ys - (y0 + t * dy))
    contrib = intensity * np.clip(1.0 - dist / thickness, 0.0, 1.0)
    np.maximum(img, contrib, out=img)


def draw_polyline(
    img: np.ndarray,
    points: Sequence[Tuple[float, float]],
    thickness: float = 1.2,
    intensity: float = 1.0,
) -> None:
    """Draw a connected polyline into a 2-D image, in place."""
    for a, b in zip(points[:-1], points[1:]):
        draw_segment(img, a, b, thickness, intensity)


def jitter_points(
    points: Sequence[Tuple[float, float]],
    rng: np.random.Generator,
    *,
    shift: float = 1.5,
    wobble: float = 0.6,
) -> list:
    """Apply a shared random shift plus independent per-point wobble."""
    sx, sy = rng.uniform(-shift, shift, 2)
    out = []
    for x, y in points:
        out.append((x + sx + rng.normal(0, wobble), y + sy + rng.normal(0, wobble)))
    return out


def add_noise(img: np.ndarray, rng: np.random.Generator, sigma: float) -> np.ndarray:
    """Additive Gaussian noise clipped back into [0, 1)."""
    noisy = img + rng.normal(0.0, sigma, img.shape)
    return np.clip(noisy, 0.0, 0.999)


def check_counts(n_samples: int, num_classes: int) -> None:
    """Validate generator arguments."""
    if n_samples < num_classes:
        raise ConfigurationError(
            f"need at least {num_classes} samples (one per class), got {n_samples}"
        )


def balanced_labels(n_samples: int, num_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Shuffled labels with as-equal-as-possible class counts."""
    labels = np.arange(n_samples) % num_classes
    rng.shuffle(labels)
    return labels
