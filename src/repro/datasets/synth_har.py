"""Synthetic human-activity-recognition (HAR) windows.

Stands in for the UCI smartphone HAR dataset (Anguita et al., ESANN'13):
six activities, one accelerometer-magnitude channel, 121-sample windows.
Each class is characterized by a distinct mixture of base frequency, gait
amplitude, posture offset, and drift; samples add random phase, amplitude
variation, and sensor noise.

The window length (121) is chosen so the paper's HAR model dimensions work
out exactly: Conv 32x1x(1x12) over ``(1, 1, 121)`` gives ``32 x 110 = 3520``
features, matching the ``FC 3520x128`` layer of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.common import balanced_labels, check_counts
from repro.nn.data import Dataset

WINDOW = 121
NUM_CLASSES = 6

ACTIVITY_NAMES = (
    "walking",
    "walking_upstairs",
    "walking_downstairs",
    "sitting",
    "standing",
    "laying",
)


@dataclass(frozen=True)
class _ActivityProfile:
    base_freq: float  # cycles per window
    amplitude: float
    offset: float
    drift: float
    harmonic: float  # relative strength of the 2nd harmonic


_PROFILES = {
    0: _ActivityProfile(base_freq=6.0, amplitude=0.55, offset=0.05, drift=0.0, harmonic=0.35),
    1: _ActivityProfile(base_freq=4.5, amplitude=0.70, offset=0.12, drift=0.15, harmonic=0.55),
    2: _ActivityProfile(base_freq=7.5, amplitude=0.80, offset=-0.10, drift=-0.15, harmonic=0.25),
    3: _ActivityProfile(base_freq=0.8, amplitude=0.06, offset=0.35, drift=0.0, harmonic=0.10),
    4: _ActivityProfile(base_freq=1.2, amplitude=0.05, offset=0.55, drift=0.0, harmonic=0.05),
    5: _ActivityProfile(base_freq=0.4, amplitude=0.03, offset=-0.50, drift=0.0, harmonic=0.02),
}


def render_window(activity: int, rng: np.random.Generator, *, noise: float = 0.06) -> np.ndarray:
    """One synthetic accelerometer window for ``activity`` (shape (121,))."""
    if activity not in _PROFILES:
        raise ValueError(f"activity must be 0..5, got {activity}")
    prof = _PROFILES[activity]
    t = np.linspace(0.0, 1.0, WINDOW)
    phase = rng.uniform(0, 2 * np.pi)
    amp = prof.amplitude * rng.uniform(0.8, 1.2)
    freq = prof.base_freq * rng.uniform(0.9, 1.1)
    sig = amp * np.sin(2 * np.pi * freq * t + phase)
    sig += prof.harmonic * amp * np.sin(4 * np.pi * freq * t + 2 * phase)
    sig += prof.offset * rng.uniform(0.9, 1.1)
    sig += prof.drift * t
    sig += rng.normal(0.0, noise, WINDOW)
    return np.clip(sig, -0.999, 0.999)


def make_har(n_samples: int = 1800, *, seed: int = 0, noise: float = 0.06) -> Dataset:
    """Generate a synthetic HAR dataset of ``(N, 1, 1, 121)`` windows."""
    check_counts(n_samples, NUM_CLASSES)
    rng = np.random.default_rng(seed)
    labels = balanced_labels(n_samples, NUM_CLASSES, rng)
    x = np.zeros((n_samples, 1, 1, WINDOW))
    for i, lab in enumerate(labels):
        x[i, 0, 0] = render_window(int(lab), rng, noise=noise)
    return Dataset(x, labels.astype(np.int64), NUM_CLASSES, name="synth-har")
