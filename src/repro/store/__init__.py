"""Durable result storage: no run ever loses finished work.

Everything above :mod:`repro.fleet` used to hold results in memory until
the very end — one raising scenario, or a ``kill -9`` three hours into a
grid, discarded every finished cell.  This package is the durability
layer underneath streaming fleet execution:

* :mod:`repro.store.shards` — :class:`ShardStore`, an appendable,
  sharded on-disk :class:`~repro.study.table.ResultTable` store (NPZ
  shards + an atomic JSON manifest, bit-identical round trips,
  self-verifying recovery from a torn final shard);
* :mod:`repro.store.cache` — :class:`ResultStore`, the content-addressed
  per-scenario result cache (BLAKE2b over the frozen scenario + engine +
  code version, the :mod:`repro.kernels.spectra` keying idiom) plus the
  finished-table archive, with hit/miss counters;
* :mod:`repro.store.records` — the lossless
  :class:`~repro.fleet.report.ScenarioResult` JSON codec a bit-identical
  resume is built on.

``repro run <study> --out DIR`` streams scenario results into a store as
they finish; a re-run with ``--resume`` replays only the missing cells
and reassembles a table bit-identical to an uninterrupted run.
"""

from repro.store.cache import (
    RESULT_COLUMNS,
    ResultStore,
    scenario_key,
    study_table_key,
)
from repro.store.records import RECORD_FORMAT, decode_result, encode_result
from repro.store.shards import MANIFEST_FORMAT, MANIFEST_NAME, ShardStore

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "RECORD_FORMAT",
    "RESULT_COLUMNS",
    "ResultStore",
    "ShardStore",
    "decode_result",
    "encode_result",
    "scenario_key",
    "study_table_key",
]
