"""Lossless JSON codec for per-scenario results.

The durable store persists whole :class:`~repro.fleet.report.
ScenarioResult` records — not just the reduced fleet table row — because
study collectors (Figure 7's energy breakdown, the checkpoint-overhead
measurement) read per-inference detail out of
:class:`~repro.sim.session.SessionStats`.  A resumed run must hand those
collectors *exactly* what an uninterrupted run would have, so the codec
is bit-exact:

* floats travel through :mod:`json`, whose encoder emits Python's
  shortest round-trip ``repr`` (NaN/Infinity literals included) — the
  same guarantee :meth:`ResultTable.to_json` relies on;
* logits arrays keep their dtype and shape and rebuild to
  ``np.array_equal`` (and byte-equal) arrays;
* field lists come from the dataclasses themselves, so a new
  :class:`~repro.sim.results.RunResult` field is serialized the day it
  is added — and a payload from a *different* field set fails decoding
  loudly instead of resurrecting a half-populated record.

The :class:`~repro.fleet.scenario.Scenario` itself is *not* embedded:
the content-addressed key (:func:`repro.store.cache.scenario_key`) is a
digest of the full spec, so the caller that computed the key already
holds the identical live scenario and attaches it on decode.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.report import ScenarioResult
from repro.fleet.scenario import Scenario
from repro.sim.results import RunResult
from repro.sim.session import SessionStats

#: Payload format version; also folded into cache keys so records written
#: by an incompatible build are misses, not decode errors.
RECORD_FORMAT = 1


def _encode_array(arr: Optional[np.ndarray]):
    if arr is None:
        return None
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": arr.ravel().tolist(),
    }


def _decode_array(spec) -> Optional[np.ndarray]:
    if spec is None:
        return None
    return np.array(spec["data"], dtype=np.dtype(spec["dtype"])).reshape(
        spec["shape"]
    )


def _encode_run(run: RunResult) -> Dict:
    out = {}
    for field in dataclasses.fields(RunResult):
        value = getattr(run, field.name)
        if field.name == "logits":
            value = _encode_array(value)
        out[field.name] = value
    return out


def _decode_run(payload: Dict) -> RunResult:
    expected = {f.name for f in dataclasses.fields(RunResult)}
    if set(payload) != expected:
        raise ConfigurationError(
            f"stored RunResult fields {sorted(payload)} do not match this "
            f"build's {sorted(expected)} — the record predates a schema "
            "change; re-run without the stale store"
        )
    kwargs = dict(payload)
    kwargs["logits"] = _decode_array(kwargs["logits"])
    return RunResult(**kwargs)


def encode_result(result: ScenarioResult) -> str:
    """Serialize everything of a result except its scenario spec."""
    return json.dumps({
        "format": RECORD_FORMAT,
        "runtime": result.stats.runtime,
        "results": [_encode_run(r) for r in result.stats.results],
        "labels": list(result.labels),
        "overflow_events": result.overflow_events,
        "error": result.error,
        "error_kind": result.error_kind,
    })


def decode_result(scenario: Scenario, payload: str) -> ScenarioResult:
    """Rebuild the :class:`ScenarioResult` a stored payload encodes.

    ``scenario`` is the live spec whose content-addressed key located the
    payload; the result is bit-identical to the one originally stored.
    """
    try:
        data = json.loads(payload)
    except ValueError as exc:
        raise ConfigurationError(f"corrupt scenario-result payload: {exc}")
    if data.get("format") != RECORD_FORMAT:
        raise ConfigurationError(
            f"scenario-result payload format {data.get('format')!r} != "
            f"{RECORD_FORMAT}"
        )
    stats = SessionStats(
        runtime=data["runtime"],
        results=[_decode_run(r) for r in data["results"]],
    )
    return ScenarioResult(
        scenario=scenario,
        stats=stats,
        labels=tuple(int(y) for y in data["labels"]),
        overflow_events=int(data["overflow_events"]),
        error=str(data.get("error", "")),
        # .get: failed results are never stored, so payloads predating
        # the field decode to the empty kind they'd have carried anyway.
        error_kind=str(data.get("error_kind", "")),
    )
