"""Content-addressed result caching over the sharded store.

Keys follow the :mod:`repro.kernels.spectra` idiom — a BLAKE2b digest of
*content*, not identity.  Here the content is the frozen simulation
spec: the full :class:`~repro.fleet.scenario.Scenario` dataclass (trace
spec included), the engine name, and the code version.  Two runs that
would produce bit-identical results by the fleet determinism contract
therefore share a key; anything that could change a single output bit —
a different seed, capacitor, trace parameter, engine, or library
release — changes the key and misses.

:class:`ResultStore` is the durable root directory a study run writes
into (``repro run <study> --out DIR``)::

    <root>/
      manifest.json, shards/     # ShardStore of scenario result records
      tables/<key>.npz           # finished study tables, content-addressed

Scenario records stream into shards *as scenarios finish*; finished
study tables are published atomically at the end of a clean run.  Failed
scenarios are recorded in reports but never cached — a failure must be
retried on the next run, not replayed forever.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro import __version__
from repro.concurrency import ForkSafeLock
from repro.errors import ConfigurationError
from repro.fleet.report import ScenarioResult
from repro.obs import metrics as _obs
from repro.fleet.scenario import Scenario
from repro.store.records import RECORD_FORMAT, encode_result
from repro.store.shards import ShardStore
from repro.study.table import ResultTable

#: Schema of the scenario-result record shards.
RESULT_COLUMNS = (
    ("key", "str"),
    ("scenario", "str"),
    ("engine", "str"),
    ("payload", "str"),
)

TABLE_DIR = "tables"


def _digest(payload: object) -> str:
    """BLAKE2b-128 hex over a canonical JSON encoding of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


def scenario_key(
    scenario: Scenario, engine: str, *, code_version: str = __version__
) -> str:
    """Content address of one scenario's result under one engine.

    Pure function of the frozen spec: the same scenario yields the same
    key in any process on any host, which is what lets a killed run's
    shards be claimed by a fresh process.  Floats serialize via their
    shortest round-trip ``repr``, so ulp-different specs get distinct
    keys.  The scenario ``name`` is *excluded* — it is a display label,
    not simulation input, so renaming a grid cell still hits.
    """
    spec = dataclasses.asdict(scenario)
    spec.pop("name")
    return _digest({
        "kind": "scenario-result",
        "format": RECORD_FORMAT,
        "scenario": spec,
        "engine": engine,
        "code": code_version,
    })


def study_table_key(
    study: str, profile, engine: str, *, code_version: str = __version__
) -> str:
    """Content address of a finished study table (any study shape)."""
    return _digest({
        "kind": "study-table",
        "format": RECORD_FORMAT,
        "study": study,
        "profile": dataclasses.asdict(profile),
        "engine": engine,
        "code": code_version,
    })


class ResultStore:
    """Durable scenario-result cache + finished-table archive at ``root``.

    Opening is creation-or-resume: an existing store is verified
    (torn-tail recovery included, see :class:`~repro.store.shards.
    ShardStore`) and its committed records become the lookup index; a
    fresh directory starts empty.  ``hits``/``misses`` count
    :meth:`lookup` outcomes, ``table_hits``/``table_misses`` count
    :meth:`load_table` outcomes — the observability the resume tests and
    ``repro run --out`` reporting are built on.
    """

    def __init__(self, root, *, shard_rows: int = 256, retry=None) -> None:
        self.root = Path(root)
        self._shards = ShardStore(
            self.root,
            RESULT_COLUMNS,
            meta={"kind": "scenario-results"},
            shard_rows=shard_rows,
            retry=retry,
        )
        self._index: Dict[str, str] = {}
        for row in self._shards.iter_rows():
            # Last write wins; identical keys hold identical payloads by
            # construction (content addressing), so order is cosmetic.
            self._index[row["key"]] = row["payload"]
        self.hits = 0
        self.misses = 0
        self.table_hits = 0
        self.table_misses = 0
        # Guards the in-memory index and the counters; the ShardStore
        # has its own lock for the disk side.  RLock because put() holds
        # it across an append that may flush (spans re-enter via obs).
        self._lock = ForkSafeLock(rlock=True)

    # -- scenario records -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    @property
    def recovered_shards(self):
        """Shard names dropped by torn-tail recovery when opening."""
        return tuple(self._shards.recovered)

    def lookup(self, key: str) -> Optional[str]:
        """The stored payload for ``key``, counting hit or miss."""
        with self._lock:
            payload = self._index.get(key)
            if payload is None:
                self.misses += 1
                if _obs.ENABLED:
                    _obs.count("store.scenario.misses")
            else:
                self.hits += 1
                if _obs.ENABLED:
                    _obs.count("store.scenario.hits")
            return payload

    def put(self, key: str, result: ScenarioResult, *, engine: str = "") -> None:
        """Record one finished scenario (buffered; see :meth:`flush`).

        Failed results are rejected — caching a failure would serve it as
        a hit forever instead of retrying the scenario.  ``engine`` is
        recorded alongside the payload for human inspection; the key
        already encodes it.  Thread-safe: concurrent puts of the same
        key write one record (the index check and append are atomic).
        """
        if result.error:
            raise ConfigurationError(
                f"refusing to cache failed scenario {result.scenario.name!r}: "
                f"{result.error}"
            )
        with self._lock:
            if key in self._index:
                return
            payload = encode_result(result)
            self._shards.append(
                key=key,
                scenario=result.scenario.name,
                engine=engine,
                payload=payload,
            )
            self._index[key] = payload
            if _obs.ENABLED:
                _obs.count("store.puts")

    def flush(self) -> None:
        """Commit buffered records as a shard (durable after this call)."""
        self._shards.flush()

    # -- finished study tables ------------------------------------------------

    def _table_path(self, key: str) -> Path:
        return self.root / TABLE_DIR / f"{key}.npz"

    def load_table(self, key: str) -> Optional[ResultTable]:
        """The finished table stored under ``key``, or ``None``."""
        path = self._table_path(key)
        if not path.is_file():
            with self._lock:
                self.table_misses += 1
            if _obs.ENABLED:
                _obs.count("store.table.misses")
            return None
        with self._lock:
            self.table_hits += 1
        if _obs.ENABLED:
            _obs.count("store.table.hits")
        return ResultTable.from_npz(str(path))

    def save_table(self, key: str, table: ResultTable) -> None:
        """Atomically publish a finished study table under ``key``."""
        path = self._table_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            table.to_npz(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- reporting ------------------------------------------------------------

    def summary(self) -> str:
        parts = [
            f"result store {self.root}: {len(self)} scenario results "
            f"({self._shards.shards} shards)",
            f"scenario cache {self.hits} hits / {self.misses} misses",
            f"table cache {self.table_hits} hits / "
            f"{self.table_misses} misses",
        ]
        if self.recovered_shards:
            parts.append(
                f"recovered from torn shard(s): "
                f"{', '.join(self.recovered_shards)}"
            )
        return "; ".join(parts)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r}, {len(self)} results)"
