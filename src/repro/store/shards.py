"""Appendable, sharded on-disk :class:`~repro.study.table.ResultTable` store.

A :class:`ShardStore` is a directory holding one JSON manifest plus a
sequence of NPZ shards, each shard a committed chunk of rows of one
declared schema::

    <root>/
      manifest.json            # schema + meta + ordered shard index
      shards/
        shard-000000.npz       # ResultTable.to_npz of the first chunk
        shard-000001.npz
        ...

Design goals, in order:

1. **Durability of finished work.**  Rows are buffered in memory and
   committed a shard at a time (:meth:`ShardStore.flush`, automatic every
   ``shard_rows`` appends).  Both the shard file and the manifest are
   written to a ``.tmp`` sibling and published with :func:`os.replace`,
   so a ``kill -9`` at any instant leaves the store in a state where
   every *committed* shard is intact — at most the unflushed tail of the
   pending buffer is lost.
2. **Bit-identical round trips.**  Shards serialize through
   :meth:`ResultTable.to_npz`, inheriting the PR 4 losslessness contract:
   every cell (floats included) reads back exactly.
3. **Self-verifying recovery.**  The manifest records each shard's row
   count and a BLAKE2b digest of its bytes.  Opening the store verifies
   every listed shard; a torn or missing *final* shard — the only shard a
   crash can tear when something bypasses the atomic publish (a dying
   disk, a copied-while-writing store) — is dropped from the manifest and
   its rows are simply re-simulated on resume.  A torn shard anywhere
   else means the store's history is gone, which is an error, not a
   recovery.

The store is generic over schemas: the fleet layer keeps scenario result
records in one (:mod:`repro.store.cache`), and any study code can keep
its own tables in another directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from repro.concurrency import ForkSafeLock
from repro.errors import ConfigurationError
from repro.faults import inject as _inject
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.obs import metrics as _obs
from repro.obs import spans as _spans
from repro.study.table import ColumnLike, ResultTable

#: On-disk manifest format (bump when the layout changes incompatibly).
MANIFEST_FORMAT = 1

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"


def _digest_file(path: Path) -> str:
    """BLAKE2b-128 hex digest of a file's bytes."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(path.read_bytes())
    return digest.hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` via tmp + fsync + :func:`os.replace`."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class ShardStore:
    """An appendable sharded table at ``root`` (see module docstring).

    ``columns`` declares the schema when creating a new store and, when
    opening an existing one, is validated against the manifest (pass
    ``None`` to accept whatever schema the store was created with —
    opening a missing store without a schema is an error).  ``meta``
    travels in the manifest and is returned verbatim on reopen.
    """

    def __init__(
        self,
        root,
        columns: Optional[Sequence[ColumnLike]] = None,
        *,
        meta: Optional[Dict[str, str]] = None,
        shard_rows: int = 256,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if shard_rows < 1:
            raise ConfigurationError("shard_rows must be >= 1")
        self.root = Path(root)
        self.shard_rows = shard_rows
        #: Transient ``OSError``\ s during flush and reopen reads are
        #: retried under this policy (ENOSPC, EIO, a flaky network FS);
        #: the final attempt's failure propagates unchanged.
        self.retry = retry if retry is not None else RetryPolicy()
        # One reentrant lock over the pending buffer and shard index:
        # append() nests into flush() at the auto-commit threshold, and
        # concurrent service jobs append through one store.  Cross-
        # *process* coordination is out of scope (one writer per store).
        self._lock = ForkSafeLock(rlock=True)
        self._shard_dir = self.root / SHARD_DIR
        self._manifest_path = self.root / MANIFEST_NAME
        #: Shard entries dropped by torn-tail recovery on open (names).
        self.recovered: List[str] = []
        self._shards: List[Dict] = []
        if self._manifest_path.is_file():
            self._open_existing(columns)
        else:
            if columns is None:
                raise ConfigurationError(
                    f"no store at {self.root} (missing {MANIFEST_NAME}); "
                    "creating one needs a declared schema"
                )
            self._schema = tuple(ResultTable(columns).schema)
            self.meta = dict(meta or {})
            self._shard_dir.mkdir(parents=True, exist_ok=True)
            self._write_manifest()
        self._pending = self._new_table()

    # -- manifest / recovery --------------------------------------------------

    def _new_table(self) -> ResultTable:
        return ResultTable(self._schema)

    def _write_manifest(self, shards: Optional[List[Dict]] = None) -> None:
        payload = {
            "format": MANIFEST_FORMAT,
            "schema": [[c.name, c.dtype] for c in self._schema],
            "meta": dict(self.meta),
            "shards": list(self._shards if shards is None else shards),
        }
        _atomic_write_text(self._manifest_path, json.dumps(payload, indent=2))

    def _open_existing(self, columns: Optional[Sequence[ColumnLike]]) -> None:
        try:
            text = call_with_retry(
                self._manifest_path.read_text, policy=self.retry,
                retry_on=(OSError,), site="store.reopen",
            )
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"corrupt store manifest {self._manifest_path}: {exc}"
            )
        if payload.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(
                f"store {self.root} has manifest format "
                f"{payload.get('format')!r}, this build reads "
                f"{MANIFEST_FORMAT}"
            )
        self._schema = tuple(
            ResultTable([(str(n), str(d)) for n, d in payload["schema"]]).schema
        )
        if columns is not None:
            expected = tuple(ResultTable(columns).schema)
            if expected != self._schema:
                raise ConfigurationError(
                    f"store {self.root} holds schema "
                    f"{[(c.name, c.dtype) for c in self._schema]}, expected "
                    f"{[(c.name, c.dtype) for c in expected]}"
                )
        self.meta = dict(payload.get("meta", {}))
        entries = list(payload.get("shards", []))
        kept: List[Dict] = []
        for i, entry in enumerate(entries):
            path = self._shard_dir / entry["name"]
            intact = path.is_file() and call_with_retry(
                lambda p=path: _digest_file(p), policy=self.retry,
                retry_on=(OSError,), site="store.reopen",
            ) == entry["blake2b"]
            if intact:
                kept.append(entry)
                continue
            if i == len(entries) - 1:
                # Torn final shard: drop it from the manifest; its rows
                # are re-simulated on resume.  Every earlier shard was
                # verified above, so finished work before the tear is kept.
                self.recovered.append(entry["name"])
                path.unlink(missing_ok=True)
            else:
                raise ConfigurationError(
                    f"store {self.root}: shard {entry['name']} is torn or "
                    "missing but is not the final shard — the store's "
                    "history is inconsistent"
                )
        self._shards = kept
        self._sweep_tmp_files()
        if self.recovered:
            self._write_manifest()

    def _sweep_tmp_files(self) -> None:
        # Leftover .tmp files are unpublished writes from a killed
        # process; the data they held was never committed.  That
        # includes a manifest.json.tmp at the root — a crash between
        # writing and os.replace'ing the manifest leaves one, and it
        # must never be trusted over the published manifest.
        self._shard_dir.mkdir(parents=True, exist_ok=True)
        for stray in self._shard_dir.glob("*.tmp"):
            stray.unlink(missing_ok=True)
        for stray in self.root.glob("*.tmp"):
            stray.unlink(missing_ok=True)

    # -- append / flush -------------------------------------------------------

    @property
    def schema(self):
        return self._schema

    @property
    def committed_rows(self) -> int:
        """Rows durable on disk (excludes the pending buffer)."""
        return sum(e["rows"] for e in self._shards)

    @property
    def pending_rows(self) -> int:
        return len(self._pending)

    @property
    def shards(self) -> int:
        return len(self._shards)

    def append(self, **row: object) -> None:
        """Buffer one row; auto-commits a shard every ``shard_rows``.

        Thread-safe: concurrent appenders interleave rows atomically (a
        row is never torn across shards) and the auto-flush threshold is
        checked under the same lock, so exactly one appender commits
        each full shard.
        """
        with self._lock:
            self._pending.append(**row)
            if len(self._pending) >= self.shard_rows:
                self.flush()

    def flush(self) -> None:
        """Commit the pending buffer as one new shard (no-op when empty).

        The shard is published before the manifest, so a crash between
        the two leaves an orphan file the manifest never references —
        recovery ignores it and the rows are re-simulated, never
        double-counted.

        Transient ``OSError``\\ s (ENOSPC, EIO — or an injected fault at
        the ``store.flush`` site) retry the *whole* attempt under
        :attr:`retry`: the shard name is derived from the committed
        count (unchanged until success) and the manifest entry is only
        adopted after a fully successful attempt, so a retried flush can
        never double-publish a shard or double-list it in the manifest.
        If every attempt fails, the pending rows stay buffered for a
        later flush and the final error propagates.
        """
        with self._lock:
            if not len(self._pending):
                return
            rows = len(self._pending)
            with _spans.span("store.shard.flush", rows=rows):
                name = f"shard-{len(self._shards):06d}.npz"
                path = self._shard_dir / name
                tmp = self._shard_dir / (name + ".tmp")

                def attempt() -> Dict:
                    with open(tmp, "wb") as fh:
                        self._pending.to_npz(fh)
                        fh.flush()
                        os.fsync(fh.fileno())
                    if _inject.ENABLED:
                        _inject.fire("store.flush", path=str(tmp))
                    digest = _digest_file(tmp)
                    os.replace(tmp, path)
                    entry = {"name": name, "rows": rows, "blake2b": digest}
                    self._write_manifest(self._shards + [entry])
                    return entry

                self._shards.append(call_with_retry(
                    attempt, policy=self.retry, retry_on=(OSError,),
                    site="store.flush",
                ))
                self._pending = self._new_table()
            if _obs.ENABLED:
                _obs.count("store.shard.flushes")
                _obs.count("store.shard.rows", rows)

    # -- reading --------------------------------------------------------------

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """Committed rows in commit order, one shard in memory at a time.

        Reads a snapshot of the shard index taken at call time; shards
        committed while iterating are not included (committed shards are
        immutable, so everything yielded is consistent).
        """
        with self._lock:
            entries = list(self._shards)
        for entry in entries:
            shard = ResultTable.from_npz(str(self._shard_dir / entry["name"]))
            if len(shard) != entry["rows"]:
                raise ConfigurationError(
                    f"store {self.root}: shard {entry['name']} holds "
                    f"{len(shard)} rows, manifest says {entry['rows']}"
                )
            for row in shard:
                yield row

    def load_table(self) -> ResultTable:
        """All committed rows merged into one in-memory table."""
        table = self._new_table()
        for row in self.iter_rows():
            table.append(**row)
        return table

    def __repr__(self) -> str:
        return (
            f"ShardStore({str(self.root)!r}, {self.shards} shards, "
            f"{self.committed_rows} rows committed, "
            f"{self.pending_rows} pending)"
        )
