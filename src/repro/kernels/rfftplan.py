"""Plan for the real-input FFT (packing + untangling pass).

The legacy ``repro.fixedpoint.rfft.q15_rfft`` rebuilt its mirror-index
arrays on every call and re-fetched untangle twiddles through an
``lru_cache``.  The plan precomputes both once per length and routes the
inner N/2-point complex FFT through the shared :class:`FFTPlan`, keeping
the untangling arithmetic expression-for-expression identical to the
reference (same int64 widths, same rounded shifts).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.concurrency import ForkSafeLock
from repro.errors import ConfigurationError
from repro.fixedpoint.overflow import OverflowMonitor
from repro.fixedpoint.q15 import INT16_MAX, INT16_MIN, saturate16
from repro.fixedpoint.rfft import _mirror_indices, _untangle_twiddles
from repro.kernels.fftplan import get_fft_plan
from repro.obs import metrics as _obs
from repro.obs import spans as _spans


class RFFTPlan:
    """Plan for length-``n`` real-input FFT over the last axis."""

    __slots__ = ("n", "half", "fftplan", "a_idx", "b_idx", "wre", "wim")

    def __init__(self, n: int) -> None:
        if n < 4 or n & (n - 1):
            raise ConfigurationError(
                f"rfft length must be a power of two >= 4, got {n}"
            )
        self.n = n
        half = n // 2
        self.half = half
        self.fftplan = get_fft_plan(half)
        # The reference's tables, widened once: sharing the constructors
        # keeps the plan/oracle pair from ever drifting.
        self.a_idx, self.b_idx = _mirror_indices(n)
        wre, wim = _untangle_twiddles(n)
        self.wre = wre.astype(np.int64)
        self.wim = wim.astype(np.int64)

    def rfft(self, x, *, monitor: Optional[OverflowMonitor] = None):
        """Planned ``q15_rfft``: first ``n/2 + 1`` bins as ``(re, im, scale)``."""
        x = np.asarray(x)
        # Pack even samples as real, odd samples as imaginary.
        ze = x[..., 0::2].astype(np.int16)
        zo = x[..., 1::2].astype(np.int16)
        z_re, z_im, z_scale = self.fftplan.fft(
            ze, zo, scaling="stage", monitor=monitor
        )

        a_re = z_re[..., self.a_idx].astype(np.int64)
        a_im = z_im[..., self.a_idx].astype(np.int64)
        b_re = z_re[..., self.b_idx].astype(np.int64)
        b_im = -z_im[..., self.b_idx].astype(np.int64)

        # Even/odd spectra (each halved to keep headroom; rounded shifts).
        fe_re = (a_re + b_re + 1) >> 1
        fe_im = (a_im + b_im + 1) >> 1
        fo_re = (a_re - b_re + 1) >> 1
        fo_im = (a_im - b_im + 1) >> 1

        rnd = np.int64(1) << 14
        t_re = (self.wre * fo_im + self.wim * fo_re + rnd) >> 15
        t_im = (self.wim * fo_im - self.wre * fo_re + rnd) >> 15
        out_re = fe_re + t_re
        out_im = fe_im + t_im
        if monitor is not None:
            monitor.check_saturation("rfft_untangle", out_re, INT16_MIN, INT16_MAX)
            monitor.check_saturation("rfft_untangle", out_im, INT16_MIN, INT16_MAX)
        return saturate16(out_re), saturate16(out_im), z_scale


#: Process-local plan cache (see ``fftplan._PLANS`` for the contract).
_PLANS: Dict[int, RFFTPlan] = {}
#: Guards the build path (double-checked; see repro.concurrency).
_PLANS_LOCK = ForkSafeLock()


def get_rfft_plan(n: int) -> RFFTPlan:
    """The shared :class:`RFFTPlan` for length ``n`` (built on first use).

    Thread-safe: racing first requests build exactly once per length
    (double-checked under the lock); the hit path stays lock-free.
    """
    plan = _PLANS.get(n)
    if plan is None:
        with _PLANS_LOCK:
            plan = _PLANS.get(n)
            if plan is not None:
                return plan
            if len(_PLANS) >= 64:
                _PLANS.clear()
            if _obs.ENABLED:
                _obs.count("kernels.rfft_plan.misses")
                with _spans.span("kernels.plan_build", kind="rfft", n=int(n)):
                    plan = RFFTPlan(int(n))
            else:
                plan = RFFTPlan(int(n))
            _PLANS[n] = plan
    elif _obs.ENABLED:
        _obs.count("kernels.rfft_plan.hits")
    return plan
