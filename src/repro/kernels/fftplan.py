"""Per-length FFT plans for the fixed-point radix-2 kernels.

A plan owns everything about one FFT length that the legacy
``repro.fixedpoint.fft._fft_core`` used to rebuild or re-slice per call:
the bit-reversal permutation, per-stage twiddle tables (sign-folded and
replicated to the workspace batch so every butterfly multiply runs over
contiguous memory), and preallocated int32 workspaces.  The stage loop
then executes the *same arithmetic in the same order* as the reference —
round-half, twiddle multiply with the +2**14 rounding term, add/sub,
overflow accounting, clip — entirely through ``out=`` ufuncs.

Bit-identity argument
---------------------
The reference and the plan differ only in memory layout (the plan keeps
data batch-last, as ``(component, n, B)``) and in where temporaries live.
Integer ufuncs are deterministic and elementwise, additions over the
``q``-style axes are exact in int32/int64, and the overflow monitor only
observes value *counts*, which are permutation-invariant.  The
differential suite in ``tests/test_kernels.py`` pins this equivalence on
randomized inputs, including saturating ones.

Internal layout
---------------
``Workspace.X`` holds the signal as ``(2, n, B)``: component first
(real/imag), FFT bins second, flattened batch last.  Butterfly partners
are then contiguous runs of ``half * B`` elements, which is what makes
the per-stage ufuncs fast for small ``half``.  ``repro.kernels.bcmplan``
builds its fused BCM chain directly in this layout to skip the transpose
in and out between FFT, spectral multiply, and IFFT.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.concurrency import ForkSafeLock
from repro.errors import ConfigurationError
from repro.fixedpoint.fft import bit_reversal_permutation, twiddle_q15
from repro.obs import metrics as _obs
from repro.obs import spans as _spans
from repro.fixedpoint.overflow import OverflowMonitor
from repro.fixedpoint.q15 import INT16_MAX, INT16_MIN

try:  # pragma: no cover - version-dependent import path
    from numpy._core.umath import clip as _clip  # numpy >= 2
except ImportError:  # pragma: no cover
    try:
        from numpy.core.umath import clip as _clip  # numpy < 2
    except ImportError:  # pragma: no cover

        def _clip(a, lo, hi, out):
            return np.clip(a, lo, hi, out=out)


_VALID_SCALING = ("stage", "none")

#: Workspaces kept per plan before the per-batch cache is reset.
_MAX_WORKSPACES = 8


def record_out_of_range(
    monitor: OverflowMonitor, site: str, values: np.ndarray, scratch: np.ndarray
) -> None:
    """``monitor.check_saturation`` against the int16 range, allocation-free.

    Two cheap reduction passes prescreen the common no-saturation case;
    otherwise ``(v + 32768) >> 16`` is nonzero exactly for ``v`` outside
    ``[-32768, 32767]`` (for the ``|v| < 2**30`` intermediates the kernels
    produce), so one add, one shift, and one count reproduce the counts
    the reference accumulated through boolean temporaries.
    """
    if values.size and values.min() >= INT16_MIN and values.max() <= INT16_MAX:
        monitor.record(site, 0, values.size)
        return
    np.add(values, 32768, out=scratch)
    scratch >>= 16
    monitor.record(site, int(np.count_nonzero(scratch)), values.size)


class Workspace:
    """Preallocated buffers for one ``(plan, flattened-batch)`` pair."""

    __slots__ = ("B", "X", "T", "P", "S", "stages")

    def __init__(self, plan: "FFTPlan", B: int) -> None:
        n = plan.n
        self.B = B
        self.X = np.empty((2, n, B), np.int32)
        self.T = np.empty((2, (n // 2) * B), np.int32)
        self.P = np.empty((2, 2, (n // 2) * B), np.int32)
        # Count scratch for the overflow monitor; P is dead by the time
        # the per-stage saturation count runs, so its storage is reused.
        self.S = self.P.reshape(2, n, B)
        self.stages = []
        for s in range(plan.log2n):
            half = 1 << s
            g = n // (half << 1)
            hB = half * B
            xv = self.X.reshape(2, g, 2, hB)
            # Twiddles replicated across batch and groups: W[c, t] with
            # the signs folded in, so T[t] = sum_c bot[c] * W[c, t]; the
            # full expansion keeps the butterfly multiply contiguous on
            # both operands.
            w = np.repeat(plan.base_w[s], B, axis=-1)[:, :, None, :]
            self.stages.append(
                (
                    xv[:, :, 0],  # tops (read/accumulate)
                    xv[:, :, 1],  # bottoms (read, then overwritten)
                    self.T.reshape(2, g, hB),
                    self.P.reshape(2, 2, g, hB),
                    np.ascontiguousarray(np.broadcast_to(w, (2, 2, g, hB))),
                )
            )


class FFTPlan:
    """Plan for length-``n`` fixed-point FFT/IFFT over the last axis."""

    __slots__ = ("n", "log2n", "perm", "base_w", "_workspaces")

    def __init__(self, n: int) -> None:
        if n < 2 or (n & (n - 1)) != 0:
            raise ConfigurationError(
                f"FFT length must be a power of two >= 2, got {n}"
            )
        self.n = n
        self.log2n = n.bit_length() - 1
        self.perm = bit_reversal_permutation(n)
        wre_full, wim_full = twiddle_q15(n)
        self.base_w: List[np.ndarray] = []
        for stage in range(self.log2n):
            stride = n // (2 << stage)
            wre = wre_full[::stride].astype(np.int32)
            wim = wim_full[::stride].astype(np.int32)
            # (c, t, half): c indexes the input component (re, im), t the
            # output component; t_re = wre*re - wim*im, t_im = wim*re + wre*im.
            self.base_w.append(
                np.array([[wre, wim], [-wim, wre]], dtype=np.int32)
            )
        # (thread ident, flattened batch) -> scratch; see workspace().
        self._workspaces: Dict[tuple, Workspace] = {}

    # -- workspace management -----------------------------------------------

    def workspace(self, B: int) -> Workspace:
        """The preallocated workspace for a flattened batch of ``B`` rows.

        Workspaces are mutable scratch, so they are keyed by *thread* as
        well as batch size: two threads running the same plan
        concurrently (the ``repro.serve`` worker pool) each get their
        own buffers and never observe each other's intermediate stage
        state — which is what keeps concurrent execution bit-identical
        to serial.  Single-threaded callers see the same one-entry
        cache as before (same thread ident on every call); dict get/set
        are GIL-atomic, and a racing ``clear()`` only drops cache
        entries — a Workspace already fetched by another thread stays
        valid through the references it holds.
        """
        key = (threading.get_ident(), B)
        ws = self._workspaces.get(key)
        if ws is None:
            if len(self._workspaces) >= _MAX_WORKSPACES:
                self._workspaces.clear()
            ws = Workspace(self, B)
            self._workspaces[key] = ws
        return ws

    def load(self, ws: Workspace, re2d, im2d, *, negate_im: bool = False) -> None:
        """Bit-reverse-permute ``(B, n)`` inputs into ``ws.X``.

        ``im2d=None`` zero-fills the imaginary lane (real input).  With
        ``negate_im`` the imaginary lane is conjugated exactly as the
        reference IFFT does: negate at int32 width, then saturate (so
        ``-(-32768)`` lands on 32767).
        """
        X = ws.X
        X[0][...] = re2d.T[self.perm]
        if im2d is None:
            X[1].fill(0)
        else:
            X[1][...] = im2d.T[self.perm]
            if negate_im:
                np.negative(X[1], out=X[1])
                _clip(X[1], INT16_MIN, INT16_MAX, X[1])

    def run(self, ws: Workspace, scaling: str, monitor: Optional[OverflowMonitor]) -> int:
        """Execute the stage loop on ``ws.X``; returns ``scale_log2``."""
        if scaling not in _VALID_SCALING:
            raise ConfigurationError(f"scaling must be one of {_VALID_SCALING}")
        X = ws.X
        S = ws.S
        stage_scaled = scaling == "stage"
        for s in range(self.log2n):
            top, bot, Tv, Pv, W = ws.stages[s]
            if stage_scaled:
                # The reference's _rounded_half: (x + 1) >> 1.
                X += 1
                X >>= 1
            # t = (w * bottom + 2**14) >> 15, via the sign-folded table.
            np.multiply(bot[:, None], W, out=Pv)
            np.add(Pv[0], Pv[1], out=Tv)
            Tv += 16384
            Tv >>= 15
            # new_bot = top - t first (it only reads top), then top += t.
            np.subtract(top, Tv, out=bot)
            top += Tv
            if monitor is not None:
                # One combined count over both components; the reference
                # recorded re and im separately at the same site, which
                # accumulates to the identical monitor end state.
                record_out_of_range(monitor, "fft_stage", X, S)
            _clip(X, INT16_MIN, INT16_MAX, X)
        return self.log2n if stage_scaled else 0

    # -- public kernels ------------------------------------------------------

    def fft(self, re, im, *, scaling: str = "stage",
            monitor: Optional[OverflowMonitor] = None):
        """Planned ``q15_fft``: returns ``(re, im, scale_log2)`` in int16."""
        t0 = time.perf_counter_ns() if _obs.ENABLED else 0
        re = np.asarray(re)
        batch = re.shape[:-1]
        n = self.n
        B = 1
        for d in batch:
            B *= d
        ws = self.workspace(B)
        self.load(ws, re.reshape(B, n), np.asarray(im).reshape(B, n))
        self.run(ws, scaling, monitor)
        out_re = np.empty(batch + (n,), np.int16)
        out_im = np.empty(batch + (n,), np.int16)
        # Stage-final clips bound X to the int16 range, so the cast is the
        # reference's saturate16.
        out_re.reshape(B, n)[...] = ws.X[0].T
        out_im.reshape(B, n)[...] = ws.X[1].T
        if _obs.ENABLED:
            _spans.record("kernels.execute", t0, kind="fft", n=n, batch=B)
        return out_re, out_im, (self.log2n if scaling == "stage" else 0)

    def ifft(self, re, im, *, scaling: str = "stage",
             monitor: Optional[OverflowMonitor] = None):
        """Planned ``q15_ifft`` via the conjugation identity."""
        t0 = time.perf_counter_ns() if _obs.ENABLED else 0
        re = np.asarray(re)
        batch = re.shape[:-1]
        n = self.n
        B = 1
        for d in batch:
            B *= d
        ws = self.workspace(B)
        self.load(ws, re.reshape(B, n), np.asarray(im).reshape(B, n),
                  negate_im=True)
        fwd = self.run(ws, scaling, monitor)
        np.negative(ws.X[1], out=ws.X[1])
        _clip(ws.X[1], INT16_MIN, INT16_MAX, ws.X[1])
        out_re = np.empty(batch + (n,), np.int16)
        out_im = np.empty(batch + (n,), np.int16)
        out_re.reshape(B, n)[...] = ws.X[0].T
        out_im.reshape(B, n)[...] = ws.X[1].T
        if _obs.ENABLED:
            _spans.record("kernels.execute", t0, kind="ifft", n=n, batch=B)
        return out_re, out_im, fwd - self.log2n


#: Process-local plan cache; workers rebuild plans lazily after a fork or
#: pickle round trip (construction is microseconds per length).
_PLANS: Dict[int, FFTPlan] = {}
#: Guards the build path; see repro.concurrency for the locking idiom.
_PLANS_LOCK = ForkSafeLock()


def get_fft_plan(n: int) -> FFTPlan:
    """The shared :class:`FFTPlan` for length ``n`` (built on first use).

    Thread-safe, double-checked: the hit path is the bare dict lookup it
    always was; the miss path builds under a lock, so racing threads get
    exactly one build per length and share the finished (immutable)
    plan.
    """
    plan = _PLANS.get(n)
    if plan is None:
        with _PLANS_LOCK:
            plan = _PLANS.get(n)
            if plan is not None:
                return plan
            if len(_PLANS) >= 64:
                _PLANS.clear()
            if _obs.ENABLED:
                _obs.count("kernels.fft_plan.misses")
                with _spans.span("kernels.plan_build", kind="fft", n=int(n)):
                    plan = FFTPlan(int(n))
                _obs.gauge("kernels.fft_plans", len(_PLANS) + 1)
            else:
                plan = FFTPlan(int(n))
            _PLANS[n] = plan
    elif _obs.ENABLED:
        _obs.count("kernels.fft_plan.hits")
    return plan
