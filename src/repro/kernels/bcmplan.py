"""Per-layer plans for the quantized BCM forward (ACE Algorithm 1).

``QuantBCM.forward`` is the hottest kernel in the repo: every completed
inference of every compressed runtime runs FFT -> spectral multiply ->
IFFT per BCM layer.  The legacy implementation re-cast the stored weight
spectra to int64 on every call and allocated a fresh ``(N, p, q, k)``
product tensor per batch.  A :class:`BCMPlan` fixes both:

* the weight spectra are sign-folded once into an ``(c, t, k, 1, p, q)``
  int32 tensor (``c`` = input component, ``t`` = output component), so
  the complex multiply is one broadcast multiply plus one add;
* the whole chain runs in the :class:`~repro.kernels.fftplan.FFTPlan`
  internal batch-last layout — the spectral product consumes the forward
  FFT's workspace directly and produces the inverse FFT's input layout,
  eliminating every transpose between the three steps;
* product/accumulator scratch is preallocated per batch size (int32:
  every intermediate is proven to fit, see the width notes inline).

Bit-identity: value-for-value equal to ``QuantBCM.forward_reference`` in
all three ``bcm_mode`` settings, including ``OverflowMonitor`` end
states.  Plans are cached per layer *identity* (``id``-keyed, evicted by
a weakref finalizer, mirroring ``repro.sim.fastsim.ProgramCache``); a
quantized layer is treated as immutable once built, which is the same
purity contract the program cache already relies on.  Plans are never
pickled — fleet workers rebuild them lazily on first forward.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from repro.concurrency import ForkSafeLock
from repro.errors import ConfigurationError
from repro.obs import metrics as _obs
from repro.obs import spans as _spans
from repro.fixedpoint.overflow import OverflowMonitor
from repro.fixedpoint.q15 import INT16_MAX, INT16_MIN, saturate16
from repro.kernels.fftplan import FFTPlan, _clip, get_fft_plan, record_out_of_range

BCM_MODES = ("stage", "prescale", "none")


class BCMPlan:
    """Fused, planned forward for one ``QuantBCM`` layer.

    Copies every field it needs out of the layer (a plan must not keep the
    layer alive — the cache's weakref finalizer is what evicts it).
    """

    __slots__ = (
        "p", "q", "k", "log2k", "s_q", "w_exp", "in_frac", "out_frac",
        "default_mode", "bias", "bias_size", "W", "fftplan", "_scratch",
    )

    def __init__(self, layer) -> None:
        k = int(layer.block_size)
        self.k = k
        self.log2k = k.bit_length() - 1
        self.p = int(layer.spec_re.shape[0])
        self.q = int(layer.spec_re.shape[1])
        self.s_q = max(0, (self.q - 1).bit_length())
        self.w_exp = int(layer.w_exp)
        self.in_frac = int(layer.in_frac)
        self.out_frac = int(layer.out_frac)
        self.default_mode = layer.mode
        self.bias = layer.bias.astype(np.int64)
        self.bias_size = int(layer.bias.size)
        # Sign-folded spectra in the fused layout (c, t, k, p, q, 1):
        # T[t] = sum_c X[c] * W[c, t] reproduces the reference's complex
        # multiply (re*wre - im*wim, re*wim + im*wre).  The trailing axis
        # broadcasts over the batch, which stays innermost end to end.
        wre = np.moveaxis(layer.spec_re.astype(np.int32), -1, 0)  # (k, p, q)
        wim = np.moveaxis(layer.spec_im.astype(np.int32), -1, 0)
        self.W = np.ascontiguousarray(
            np.stack([np.stack([wre, wim]), np.stack([-wim, wre])])[..., None]
        )
        self.fftplan: FFTPlan = get_fft_plan(k)
        # (thread ident, batch) -> scratch tuple; see _buffers().
        self._scratch: Dict[tuple, Tuple[np.ndarray, ...]] = {}

    def _buffers(self, n: int):
        # Keyed by thread as well as batch size: the buffers are mutable
        # scratch, and concurrent service threads running forwards
        # through the same plan must never share them (same contract as
        # FFTPlan.workspace).
        key = (threading.get_ident(), n)
        bufs = self._scratch.get(key)
        if bufs is None:
            if len(self._scratch) >= 8:
                self._scratch.clear()
            p, q, k = self.p, self.q, self.k
            P = np.empty((2, 2, k, p, q, n), np.int32)
            T = np.empty((2, k, p, q, n), np.int32)
            ACC = np.empty((2, k, p, n), np.int32)
            # Weights pre-expanded over the batch: the product multiply
            # then runs contiguous x contiguous -> contiguous.
            WX = np.ascontiguousarray(np.broadcast_to(self.W, P.shape))
            Y = np.empty((n, p, k), np.int64)
            self._scratch[key] = bufs = (P, T, ACC, WX, Y)
        return bufs

    def forward(
        self,
        x: np.ndarray,
        monitor: Optional[OverflowMonitor] = None,
        mode: Optional[str] = None,
    ) -> np.ndarray:
        t0 = time.perf_counter_ns() if _obs.ENABLED else 0
        mode = mode or self.default_mode
        if mode not in BCM_MODES:
            raise ConfigurationError(f"bcm mode must be one of {BCM_MODES}")
        n = x.shape[0]
        k, log2k = self.k, self.log2k
        in_padded = self.q * k
        if x.shape[1] != in_padded:
            pad = np.zeros((n, in_padded - x.shape[1]), dtype=x.dtype)
            x = np.concatenate([x, pad], axis=1)
        # Batch rows ordered (q, n) so the sample axis stays innermost in
        # the spectral product.  FFT rows are independent, so any row
        # ordering yields the same per-row bits.
        xq = x.reshape(n, self.q, k).transpose(2, 1, 0)  # (k, q, n)

        # Forward FFT of the activations, in the plan's internal layout.
        fws = self.fftplan.workspace(n * self.q)
        perm = self.fftplan.perm
        if mode == "prescale":
            # Algorithm 1 lines 3-4: SCALE-DOWN by the vector length.
            pre = (xq.astype(np.int32) + (1 << (log2k - 1))) >> log2k
            fws.X[0].reshape(k, self.q, n)[...] = pre[perm]
            fft_scale = log2k
        else:
            fws.X[0].reshape(k, self.q, n)[...] = xq[perm]
            fft_scale = log2k if mode == "stage" else 0
        fws.X[1].fill(0)
        self.fftplan.run(fws, "stage" if mode == "stage" else "none", monitor)
        FX = fws.X.reshape(2, k, self.q, n)  # (c, k, q, n) int32, int16 range

        # Complex multiply with the stored spectra; shifted q-sum.
        # int32 is exact throughout: |x*w| <= 2**30, the +2**14 rounding
        # term cannot overflow the pairwise int32 sum, and the post-shift
        # values are clipped to int16 range before the q-sum of at most
        # 2**s_q terms.
        P, T, ACC, WX, Y = self._buffers(n)
        np.multiply(FX[:, None, :, None, :, :], WX, out=P)
        np.add(P[0], P[1], out=T)
        T += 1 << 14
        T >>= 15
        if monitor is not None:
            # Combined re+im count at the reference's "bcm_mul" site; P is
            # dead here, so its first half doubles as count scratch.
            record_out_of_range(monitor, "bcm_mul", T, P[0])
        _clip(T, INT16_MIN, INT16_MAX, T)
        if self.s_q:
            T += 1 << (self.s_q - 1)
            T >>= self.s_q
        # q-sum as explicit adds (integer addition is exact in any order;
        # np.sum's reduce machinery is slow for a tiny axis).
        if self.q == 1:
            ACC[...] = T[:, :, :, 0]
        else:
            np.add(T[:, :, :, 0], T[:, :, :, 1], out=ACC)
            for j in range(2, self.q):
                ACC += T[:, :, :, j]
        if monitor is not None:
            record_out_of_range(
                monitor, "bcm_acc", ACC,
                P.reshape(-1)[: ACC.size].reshape(ACC.shape),
            )
        _clip(ACC, INT16_MIN, INT16_MAX, ACC)

        # Block-exponent renormalization (LEA BEXP) before the inverse
        # transform: shift left into the headroom, per sample.
        if mode == "stage":
            A = P.reshape(-1)[: ACC.size].reshape(ACC.shape)  # abs scratch
            np.absolute(ACC, out=A)
            peak = np.maximum(A.max(axis=(0, 1, 2)), 1)
            h = np.maximum(0, 14 - np.floor(np.log2(peak)).astype(np.int64))
            ACC <<= h.astype(np.int32)[None, None, None, :]
        else:
            h = np.zeros(n, dtype=np.int64)

        # Inverse FFT: ACC (c, k, p, n) is already a (p, n)-ordered batch
        # of length-k rows in the internal layout.  Values are
        # int16-ranged (the BEXP shift lands below 2**15 by construction),
        # so loading the int32 rows reproduces the reference's saturate16.
        iws = self.fftplan.workspace(n * self.p)
        iws.X[0][...] = ACC[0].reshape(k, self.p * n)[perm]
        iws.X[1][...] = ACC[1].reshape(k, self.p * n)[perm]
        np.negative(iws.X[1], out=iws.X[1])
        _clip(iws.X[1], INT16_MIN, INT16_MAX, iws.X[1])
        fwd = self.fftplan.run(
            iws, "stage" if mode == "stage" else "none", monitor
        )
        ifft_scale = fwd - log2k
        # The imaginary output is discarded (only the monitor saw it), so
        # the reference's final conjugation is skipped.
        Y[...] = iws.X[0].reshape(k, self.p, n).transpose(2, 1, 0)
        y = Y

        # Land on the out_frac grid (see repro.ace.scaling for the
        # raw-value algebra); h is the per-sample BEXP headroom used.
        up = (
            self.out_frac - self.in_frac + fft_scale + self.w_exp
            + self.s_q + ifft_scale
        )
        shift_left = up - h
        if n == 0 or shift_left.min() >= 0:
            y <<= shift_left[:, None, None]
            out = y
        elif shift_left.max() < 0:
            rs = -shift_left[:, None, None]
            out = (y + (np.int64(1) << (rs - 1))) >> rs
        else:
            out = np.where(
                shift_left[:, None, None] >= 0,
                y << np.maximum(shift_left[:, None, None], 0),
                (y + (np.int64(1) << np.maximum(-shift_left[:, None, None] - 1, 0)))
                >> np.maximum(-shift_left[:, None, None], 0),
            )
        out = out.reshape(n, -1)[:, : self.bias_size]
        out = out + self.bias
        if monitor is not None:
            monitor.check_saturation("bcm_out", out, INT16_MIN, INT16_MAX)
        out16 = saturate16(out)
        if _obs.ENABLED:
            _spans.record("kernels.execute", t0, kind="bcm", n=self.k, batch=n)
        return out16


#: id-keyed plan cache with weakref eviction (the ProgramCache pattern).
_PLANS: Dict[int, BCMPlan] = {}
#: Guards the build path (double-checked; see repro.concurrency).
_PLANS_LOCK = ForkSafeLock()


def get_bcm_plan(layer) -> BCMPlan:
    """The shared :class:`BCMPlan` for a ``QuantBCM`` layer instance.

    Thread-safe: racing first forwards through one layer build exactly
    one plan (double-checked under the lock); the hit path stays
    lock-free.  Execution through a shared plan is safe because the
    plan's only mutable state, its scratch buffers, is keyed per thread.
    """
    key = id(layer)
    plan = _PLANS.get(key)
    if plan is None:
        with _PLANS_LOCK:
            plan = _PLANS.get(key)
            if plan is not None:
                return plan
            if _obs.ENABLED:
                _obs.count("kernels.bcm_plan.misses")
                with _spans.span(
                    "kernels.plan_build", kind="bcm",
                    n=int(getattr(layer, "block_size", 0)),
                ):
                    plan = BCMPlan(layer)
            else:
                plan = BCMPlan(layer)
            _PLANS[key] = plan
            try:
                weakref.finalize(layer, _PLANS.pop, key, None)
            except TypeError:  # pragma: no cover - non-weakref-able layer
                pass
    elif _obs.ENABLED:
        _obs.count("kernels.bcm_plan.hits")
    return plan


def warm_quantized_model(qmodel) -> int:
    """Prebuild FFT/BCM plans for every BCM layer of a quantized model.

    Called from session setup so the per-sample hot loop never pays
    first-call plan construction; returns the number of plans touched.
    Safe on any model (layers without spectra are skipped).
    """
    count = 0
    for layer in getattr(qmodel, "layers", ()):
        if hasattr(layer, "spec_re") and hasattr(layer, "block_size"):
            get_bcm_plan(layer)
            count += 1
    return count
