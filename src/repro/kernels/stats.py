"""Introspection and reset helpers for the kernel plan caches.

Used by benchmarks (to prove warm-path behaviour), tests (isolation), and
fleet debugging (a worker's cache population shows which plans its
scenarios actually exercised).
"""

from __future__ import annotations

from repro.kernels import bcmplan, fftplan, rfftplan
from repro.kernels.spectra import clear_spectra_cache, spectra_cache_stats


def plan_cache_stats() -> dict:
    """Sizes of every process-local kernel cache."""
    return {
        "fft_plans": len(fftplan._PLANS),
        "fft_workspaces": sum(
            len(p._workspaces) for p in fftplan._PLANS.values()
        ),
        "rfft_plans": len(rfftplan._PLANS),
        "bcm_plans": len(bcmplan._PLANS),
        "spectra": spectra_cache_stats(),
    }


def clear_plan_caches() -> None:
    """Reset every kernel cache (plans rebuild lazily on next use)."""
    with fftplan._PLANS_LOCK:
        fftplan._PLANS.clear()
    with rfftplan._PLANS_LOCK:
        rfftplan._PLANS.clear()
    with bcmplan._PLANS_LOCK:
        bcmplan._PLANS.clear()
    clear_spectra_cache()
