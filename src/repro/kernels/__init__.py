"""Kernel plan cache: batched, allocation-free Q15/BCM compute.

The numeric kernels are what bound experiment wall time (see
``benchmarks/bench_kernels.py``): the fixed-point FFT rebuilt twiddle and
bit-reversal tables on every call and walked its stages through a Python
loop full of temporaries, and every quantized BCM forward re-derived
weight constants and allocated fresh scratch per layer per batch.  This
package applies the plan/precompile pattern that already paid off for the
simulator (``repro.sim.fastsim.CompiledProgram``) one level down, at the
kernels themselves:

* :class:`~repro.kernels.fftplan.FFTPlan` — per-length FFT plans holding
  twiddle tables, bit-reversal permutations, and preallocated batch
  workspaces, so ``q15_fft``/``q15_ifft`` do zero per-call table
  construction (FFTW-style plan caching, matching the paper's
  precomputed-twiddle LEA kernels);
* :class:`~repro.kernels.rfftplan.RFFTPlan` — the real-input untangling
  pass with cached factor tables;
* :class:`~repro.kernels.bcmplan.BCMPlan` — per-``QuantBCM``-layer plans
  (sign-folded weight spectra, fused FFT -> multiply -> IFFT chain in the
  plan's internal layout, shared scratch);
* :func:`~repro.kernels.spectra.weight_spectra` — a content-addressed
  cache of float ``FFT(w)`` weight transforms shared by ``BCMDense``
  training forwards, ``bcm_matvec``, and ``quantize_model``.

**Bit-identity contract.**  Every planned kernel produces bit-identical
outputs — and identical :class:`~repro.fixedpoint.overflow.OverflowMonitor`
end states — to the legacy reference implementations, which are kept as
``q15_fft_reference``/``q15_ifft_reference``/``q15_rfft_reference`` and
``QuantBCM.forward_reference`` precisely so the differential conformance
suite (``tests/test_kernels.py``) can keep proving it.  Plans only change
*where* intermediate values live, never what they are.

**Process boundaries.**  Plans live in process-local caches keyed by FFT
length / layer identity and are never pickled; a fleet worker that
receives a model rebuilds its plans lazily on first forward (table
construction is microseconds, amortized over the worker's whole scenario
batch).
"""

from repro.kernels.bcmplan import BCMPlan, get_bcm_plan, warm_quantized_model
from repro.kernels.fftplan import FFTPlan, get_fft_plan
from repro.kernels.rfftplan import RFFTPlan, get_rfft_plan
from repro.kernels.spectra import weight_spectra
from repro.kernels.stats import clear_plan_caches, plan_cache_stats

__all__ = [
    "BCMPlan",
    "FFTPlan",
    "RFFTPlan",
    "clear_plan_caches",
    "get_bcm_plan",
    "get_fft_plan",
    "get_rfft_plan",
    "plan_cache_stats",
    "warm_quantized_model",
    "weight_spectra",
]
