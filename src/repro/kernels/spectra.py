"""Content-addressed cache of float BCM weight spectra.

``BCMDense.forward`` (training), ``bcm_matvec`` (the float reference
kernel), and ``quantize_model`` all compute ``numpy.fft.fft(w, axis=-1)``
of the same first-column weight tensors; sessions and fleets repeat the
layer forwards with frozen weights, so the transform is pure overhead
after the first call.  The cache keys on a BLAKE2b digest of the array
*contents* (plus shape/dtype), not on object identity:

* frozen weights (inference, sessions, fleets) hit on every forward;
* training updates change the bytes, miss, and recompute — in-place
  optimizer mutation cannot serve stale spectra;
* ``numpy.fft`` is deterministic within a process, so a hit is
  bit-identical to recomputing.

Cached arrays are returned read-only (shared across callers); everything
in this repo already treats them as immutable (``BCMDense.backward``
conjugates into fresh arrays).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.concurrency import ForkSafeLock
from repro.obs import metrics as _obs

#: Entry/byte budgets before least-recently-used eviction.  Sized for the
#: model zoo (a handful of BCM layers per model, a few models per
#: process); the byte cap bounds what a training loop — whose every step
#: mutates the weights and therefore misses — can accumulate in dead
#: entries.
_MAX_ENTRIES = 64
_MAX_BYTES = 8 * 1024 * 1024

_CACHE: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
_CACHE_BYTES = 0
_HITS = 0
_MISSES = 0
#: One lock over lookup *and* compute: the LRU reorder on a hit mutates
#: the OrderedDict (so even hits must hold it), and computing the FFT
#: inside the lock guarantees exactly one transform per distinct weight
#: tensor under racing threads.  Transforms are small (zoo layers), so
#: the serialization window is microseconds.
_LOCK = ForkSafeLock()


def _fingerprint(w: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str((w.shape, w.dtype.str)).encode())
    digest.update(np.ascontiguousarray(w).tobytes())
    return digest.digest()


def weight_spectra(w) -> np.ndarray:
    """``numpy.fft.fft(w, axis=-1)`` memoized on array contents.

    Returns a read-only complex array; bit-identical to an uncached
    transform of the same data.
    """
    global _HITS, _MISSES, _CACHE_BYTES
    w = np.asarray(w, dtype=np.float64)
    key = _fingerprint(w)
    with _LOCK:
        spec = _CACHE.get(key)
        if spec is not None:
            _HITS += 1
            if _obs.ENABLED:
                _obs.count("kernels.spectra.hits")
            _CACHE.move_to_end(key)
            return spec
        _MISSES += 1
        if _obs.ENABLED:
            _obs.count("kernels.spectra.misses")
        spec = np.fft.fft(w, axis=-1)
        spec.setflags(write=False)
        _CACHE[key] = spec
        _CACHE_BYTES += spec.nbytes
        while _CACHE and (
            len(_CACHE) > _MAX_ENTRIES or _CACHE_BYTES > _MAX_BYTES
        ):
            _, evicted = _CACHE.popitem(last=False)
            _CACHE_BYTES -= evicted.nbytes
        return spec


def spectra_cache_stats() -> dict:
    """Hit/miss counters and current size of the spectra cache."""
    with _LOCK:
        return {
            "entries": len(_CACHE),
            "bytes": _CACHE_BYTES,
            "hits": _HITS,
            "misses": _MISSES,
        }


def clear_spectra_cache() -> None:
    """Drop all cached spectra (tests and memory-pressure escape hatch)."""
    global _HITS, _MISSES, _CACHE_BYTES
    with _LOCK:
        _CACHE.clear()
        _CACHE_BYTES = 0
        _HITS = 0
        _MISSES = 0
