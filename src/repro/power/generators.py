"""Seeded generative harvesting families, rendered to empirical traces.

Each generator models one harvesting modality the intermittent-computing
literature evaluates against, draws its randomness from an explicit
``seed`` (``np.random.default_rng``), and *pre-renders* the process into
an :class:`~repro.power.empirical.EmpiricalTrace` — so the stochastic
structure lives in data, replays are exactly reproducible, and the fast
engine's prefix-sum energy path applies unchanged.  Time scales are
compressed relative to the physical processes (a "day" is a few
simulated minutes) to match the repo's millisecond-scale inference
workloads, mirroring how :class:`~repro.power.traces.SolarTrace` already
treats its period.

Generators normalize to a stated mean power where one is given, so
corpus entries are comparable across families; reshaping beyond that is
the job of the :class:`~repro.power.empirical.EmpiricalTrace` transforms.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.power.empirical import EmpiricalTrace


def _rendered(times, powers, mean_power_w=None) -> EmpiricalTrace:
    trace = EmpiricalTrace(times, powers, end="loop")
    if mean_power_w is not None:
        trace = trace.scale_to_mean_power(mean_power_w)
    return trace


def markov_rf(
    seed: int = 0,
    *,
    duration_s: float = 120.0,
    mean_power_w: float = 1.5e-3,
    mean_dwell_s: float = 0.04,
) -> EmpiricalTrace:
    """Markov-modulated ambient RF: a 3-state (off / scrap / beam) chain.

    Unlike :class:`~repro.power.traces.StochasticRFTrace`'s independent
    on/off renewal process, a Markov chain gives *correlated* bursts: a
    strong-beam state tends to persist (a reader parked nearby), scraps
    cluster, and deep off periods are sticky — the burst-length
    distribution is bimodal rather than exponential.
    """
    if duration_s <= 0 or mean_power_w <= 0 or mean_dwell_s <= 0:
        raise ConfigurationError("invalid markov_rf parameters")
    rng = np.random.default_rng(seed)
    # States: 0 = off, 1 = scrap (weak ambient), 2 = beam (reader close).
    levels = (0.0, 0.6, 3.0)          # relative power per state
    dwell = (1.5, 0.7, 1.0)           # relative mean dwell per state
    transition = np.array([
        [0.0, 0.8, 0.2],              # off  -> mostly scraps
        [0.45, 0.0, 0.55],            # scrap -> off or beam
        [0.35, 0.65, 0.0],            # beam -> decays via scraps
    ])
    times = [0.0]
    powers = []
    state = 0
    t = 0.0
    while t < duration_s:
        dur = max(float(rng.exponential(dwell[state] * mean_dwell_s)), 1e-4)
        level = levels[state]
        if level > 0.0:
            level *= float(rng.uniform(0.7, 1.3))  # per-burst fading
        t += dur
        times.append(t)
        powers.append(level)
        state = int(rng.choice(3, p=transition[state]))
    return _rendered(times, powers, mean_power_w)


def diurnal_solar(
    seed: int = 0,
    *,
    day_s: float = 240.0,
    days: int = 1,
    peak_power_w: float = 5e-3,
    cloudiness: float = 0.3,
    samples_per_day: int = 480,
) -> EmpiricalTrace:
    """Diurnal solar with random cloud occlusion.

    The clear-sky envelope is the positive half of a sine (daylight) and
    zero overnight; ``cloudiness`` in [0, 1) sets the fraction of
    daylight shadowed by clouds, which arrive as seeded random fronts
    attenuating the envelope to 10-45% for tens of simulated seconds.
    ``cloudiness=0`` renders the deterministic clear-sky day.
    """
    if day_s <= 0 or days < 1 or peak_power_w < 0 or samples_per_day < 16:
        raise ConfigurationError("invalid diurnal_solar parameters")
    if not 0.0 <= cloudiness < 1.0:
        raise ConfigurationError("cloudiness must be in [0, 1)")
    rng = np.random.default_rng(seed)
    n = samples_per_day * days
    edges = np.linspace(0.0, day_s * days, n + 1)
    seg_s = np.diff(edges)
    mid = (edges[:-1] + edges[1:]) / 2.0
    envelope = np.maximum(0.0, np.sin(2.0 * np.pi * mid / day_s))
    attenuation = np.ones(n)
    if cloudiness > 0.0:
        # Keep drawing cloud fronts until the requested fraction of
        # *daylight* is actually shadowed — fronts landing overnight,
        # past the horizon, or over an existing shadow add nothing, so
        # the realized fraction is measured, not assumed.  The iteration
        # cap only guards degenerate parameter corners; typical targets
        # are met within a few dozen fronts.
        daylight = envelope > 0.0
        target = cloudiness * float(seg_s[daylight].sum())
        for _ in range(2000):
            shadowed = float(seg_s[daylight & (attenuation < 1.0)].sum())
            if shadowed >= target:
                break
            start = float(rng.uniform(0.0, day_s * days))
            dur = float(rng.exponential(day_s / 12.0))
            factor = float(rng.uniform(0.10, 0.45))
            window = (mid >= start) & (mid < start + dur)
            attenuation[window] = np.minimum(attenuation[window], factor)
    return _rendered(edges, peak_power_w * envelope * attenuation)


def kinetic_walk(
    seed: int = 0,
    *,
    duration_s: float = 180.0,
    step_hz: float = 1.9,
    peak_power_w: float = 4e-3,
    walk_bout_s: float = 20.0,
    rest_bout_s: float = 15.0,
) -> EmpiricalTrace:
    """Kinetic/piezo harvesting from walking: step impulses in bouts.

    Walking bouts (randomized around ``walk_bout_s``) alternate with
    rests; within a bout each heel strike is a short high-power pulse at
    the (jittered) step frequency with per-step amplitude spread — the
    classic spiky wearable-harvester profile: high peak, low mean, and
    dead gaps that straddle the capacitor's turn-on swing.
    """
    if min(duration_s, step_hz, peak_power_w, walk_bout_s, rest_bout_s) <= 0:
        raise ConfigurationError("invalid kinetic_walk parameters")
    rng = np.random.default_rng(seed)
    times = [0.0]
    powers = []

    def emit(dur: float, level: float) -> None:
        times.append(times[-1] + dur)
        powers.append(level)

    pulse_s = min(0.25 / step_hz, 0.12)
    walking = True
    while times[-1] < duration_s:
        if walking:
            bout = float(rng.uniform(0.6, 1.4)) * walk_bout_s
            end = times[-1] + bout
            while times[-1] < min(end, duration_s):
                period = 1.0 / (step_hz * float(rng.uniform(0.9, 1.1)))
                amp = peak_power_w * float(rng.uniform(0.6, 1.0))
                emit(pulse_s, amp)
                emit(max(period - pulse_s, 1e-3), 0.0)
        else:
            emit(float(rng.uniform(0.5, 1.5)) * rest_bout_s, 0.0)
        walking = not walking
    return _rendered(times, powers)


def office_wifi(
    seed: int = 0,
    *,
    day_s: float = 240.0,
    mean_power_w: float = 0.8e-3,
    beacon_period_s: float = 0.4,
    office_fraction: float = 0.4,
) -> EmpiricalTrace:
    """Office WiFi-harvesting duty pattern: beacon bursts in work hours.

    During the "office" fraction of the day the harvester sees periodic
    beacon/traffic bursts (short duty at ``beacon_period_s`` with
    load-dependent amplitude) over a weak ambient floor; outside office
    hours only the floor remains.  A deterministic schedule with seeded
    per-burst amplitudes: the duty *pattern* is infrastructure, the
    traffic is not.
    """
    if day_s <= 0 or mean_power_w <= 0 or beacon_period_s <= 0:
        raise ConfigurationError("invalid office_wifi parameters")
    if not 0.0 < office_fraction <= 1.0:
        raise ConfigurationError("office_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    floor = 0.05
    burst_s = 0.25 * beacon_period_s
    office_end = office_fraction * day_s
    times = [0.0]
    powers = []
    t = 0.0
    while t < office_end:
        load = float(rng.uniform(0.5, 2.0))  # traffic-dependent amplitude
        times.append(min(t + burst_s, office_end))
        powers.append(1.0 * load)
        nxt = min(t + beacon_period_s, office_end)
        if nxt > times[-1]:
            times.append(nxt)
            powers.append(floor)
        t = nxt
    if office_end < day_s:
        times.append(day_s)
        powers.append(floor)
    return _rendered(times, powers, mean_power_w)


def testbed_square(
    seed: int = 0,
    *,
    power_w: float = 5e-3,
    period_s: float = 0.05,
    duty: float = 0.3,
    periods: int = 40,
) -> EmpiricalTrace:
    """The paper's function-generator square wave, rendered empirically.

    Deterministic (``seed`` accepted for corpus-interface uniformity):
    the same profile as :class:`~repro.power.traces.SquareWaveTrace`, as
    a recorded trace — the bridge case for validating the empirical path
    against a closed form.
    """
    if power_w < 0 or period_s <= 0 or not 0.0 < duty < 1.0 or periods < 1:
        raise ConfigurationError("invalid testbed_square parameters")
    times = [0.0]
    powers = []
    for k in range(periods):
        times.append(k * period_s + duty * period_s)
        powers.append(power_w)
        times.append((k + 1) * period_s)
        powers.append(0.0)
    return EmpiricalTrace(times, powers, end="loop")
