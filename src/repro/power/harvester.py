"""Energy harvester: trace + capacitor + wall clock.

The harvester is the device's supply.  Executing work draws energy from
the capacitor (while harvest trickles in); when the capacitor hits the
brown-out threshold a :class:`~repro.errors.PowerFailureError` propagates
to the intermittent machine, which then calls :meth:`recharge` to advance
the wall clock until the turn-on voltage is reached again.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, InferenceAborted, PowerFailureError
from repro.power.capacitor import Capacitor
from repro.power.traces import PowerTrace


class EnergyHarvester:
    """Supply model combining a power trace and a storage capacitor."""

    def __init__(
        self,
        trace: PowerTrace,
        capacitor: Capacitor,
        *,
        efficiency: float = 0.8,
        charge_step_s: float = 1e-3,
        charge_timeout_s: float = 600.0,
    ) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if charge_step_s <= 0 or charge_timeout_s <= 0:
            raise ConfigurationError("charge step/timeout must be positive")
        self.trace = trace
        self.capacitor = capacitor
        self.efficiency = efficiency
        self.charge_step_s = charge_step_s
        self.charge_timeout_s = charge_timeout_s
        self.clock_s = 0.0
        self.charge_time_s = 0.0
        self.failures = 0
        #: Optional (time, voltage) sampling; see :meth:`enable_logging`.
        self.voltage_log = None
        self._log_interval_s = 0.0
        self._last_log_t = -1.0

    @property
    def voltage(self) -> float:
        return self.capacitor.voltage

    @property
    def available_energy_j(self) -> float:
        return self.capacitor.usable_energy_j

    def draw(self, energy_j: float, duration_s: float) -> None:
        """Consume ``energy_j`` over ``duration_s`` of device activity.

        Harvested input during the activity window is credited first.
        Raises :class:`PowerFailureError` on brown-out (the energy already
        spent is genuinely gone — wasted work).
        """
        if energy_j < 0 or duration_s < 0:
            raise ConfigurationError("draw arguments must be non-negative")
        harvested = self.trace.energy(self.clock_s, duration_s) * self.efficiency
        self.clock_s += duration_s
        self.capacitor.charge(harvested)
        ok = self.capacitor.draw(energy_j)
        self._log_sample()
        if not ok:
            self.failures += 1
            raise PowerFailureError(
                f"brown-out at t={self.clock_s * 1e3:.1f} ms "
                f"(failure #{self.failures})"
            )

    def recharge(self) -> float:
        """Advance time until the capacitor reaches ``v_on``.

        Returns the charging duration.  Raises
        :class:`~repro.errors.InferenceAborted` if the trace cannot deliver
        the turn-on energy within the timeout (dead supply).
        """
        waited = 0.0
        cap = self.capacitor
        while cap.voltage < cap.v_on:
            if waited >= self.charge_timeout_s:
                raise InferenceAborted(
                    self.failures,
                    f"supply delivered too little energy in "
                    f"{self.charge_timeout_s} s to reach v_on",
                )
            harvested = (
                self.trace.energy(self.clock_s, self.charge_step_s) * self.efficiency
            )
            cap.charge(harvested)
            self.clock_s += self.charge_step_s
            waited += self.charge_step_s
            self._log_sample()
        self.charge_time_s += waited
        return waited

    # -- voltage logging ------------------------------------------------------

    def enable_logging(self, interval_s: float = 1e-3, max_samples: int = 100000) -> None:
        """Start recording ``(time, voltage)`` samples at ``interval_s``."""
        if interval_s <= 0 or max_samples <= 0:
            raise ConfigurationError("interval and max_samples must be positive")
        self.voltage_log = []
        self._log_interval_s = interval_s
        self._max_samples = max_samples
        self._last_log_t = -1.0
        self._log_sample()

    def _log_sample(self) -> None:
        if self.voltage_log is None:
            return
        if (
            self.clock_s - self._last_log_t >= self._log_interval_s
            and len(self.voltage_log) < self._max_samples
        ):
            self.voltage_log.append((self.clock_s, self.capacitor.voltage))
            self._last_log_t = self.clock_s

    def reset(self) -> None:
        """Fresh run: full capacitor, zeroed clocks and counters."""
        self.capacitor.reset()
        self.clock_s = 0.0
        self.charge_time_s = 0.0
        self.failures = 0
