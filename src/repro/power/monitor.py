"""Voltage monitor used by FLEX's on-demand checkpointing.

Real deployments use an ADC/comparator watching the storage capacitor;
FLEX checkpoints "the latest intermediate result" when the voltage sinks
below a warning level (Section III-C, "Other layer").
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.power.harvester import EnergyHarvester


class VoltageMonitor:
    """Threshold comparator over the harvester's capacitor voltage."""

    def __init__(self, harvester: EnergyHarvester, v_warn: float = 2.2) -> None:
        cap = harvester.capacitor
        if not cap.v_off < v_warn < cap.v_on:
            raise ConfigurationError(
                f"v_warn must lie inside (v_off={cap.v_off}, v_on={cap.v_on}), "
                f"got {v_warn}"
            )
        self.harvester = harvester
        self.v_warn = v_warn
        self.warnings = 0

    def is_low(self) -> bool:
        """True when the supply is close to brown-out."""
        low = self.harvester.voltage <= self.v_warn
        if low:
            self.warnings += 1
        return low

    def predicts_failure(self, energy_needed_j: float, margin: float = 1.5) -> bool:
        """True when the next ``energy_needed_j`` draw would likely fail."""
        if energy_needed_j < 0:
            raise ConfigurationError("energy must be non-negative")
        return self.harvester.available_energy_j < energy_needed_j * margin
