"""Capacitor energy buffer.

Energy-harvesting frontends charge a capacitor and release the device when
the voltage crosses ``v_on``; execution continues until ``v_off`` (the
brown-out threshold), at which point volatile state is lost.  The paper's
testbed uses 100 uF.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


class Capacitor:
    """State: terminal voltage; energy is (1/2) C V^2."""

    def __init__(
        self,
        capacitance_f: float = 100e-6,
        v_on: float = 3.5,
        v_off: float = 1.8,
        v_max: float = 3.6,
    ) -> None:
        if capacitance_f <= 0:
            raise ConfigurationError("capacitance must be positive")
        if not 0.0 < v_off < v_on <= v_max:
            raise ConfigurationError(
                f"need 0 < v_off < v_on <= v_max, got "
                f"({v_off}, {v_on}, {v_max})"
            )
        self.capacitance_f = capacitance_f
        self.v_on = v_on
        self.v_off = v_off
        self.v_max = v_max
        self.voltage = v_on  # start charged to the turn-on level

    @property
    def usable_energy_j(self) -> float:
        """Energy available before brown-out."""
        return max(
            0.0,
            0.5 * self.capacitance_f * (self.voltage ** 2 - self.v_off ** 2),
        )

    @property
    def full_swing_energy_j(self) -> float:
        """Energy of one full v_on -> v_off discharge."""
        return 0.5 * self.capacitance_f * (self.v_on ** 2 - self.v_off ** 2)

    @property
    def is_on(self) -> bool:
        return self.voltage > self.v_off

    def draw(self, energy_j: float) -> bool:
        """Remove energy; returns False (and clamps to v_off) on brown-out."""
        if energy_j < 0:
            raise ConfigurationError("cannot draw negative energy")
        if energy_j > self.usable_energy_j:
            self.voltage = self.v_off
            return False
        new_sq = self.voltage ** 2 - 2.0 * energy_j / self.capacitance_f
        self.voltage = math.sqrt(max(new_sq, self.v_off ** 2))
        return True

    def charge(self, energy_j: float) -> None:
        """Add harvested energy, clipping at ``v_max``."""
        if energy_j < 0:
            raise ConfigurationError("cannot charge negative energy")
        new_sq = self.voltage ** 2 + 2.0 * energy_j / self.capacitance_f
        self.voltage = min(math.sqrt(new_sq), self.v_max)

    def reset(self) -> None:
        """Fresh start at the turn-on voltage."""
        self.voltage = self.v_on
