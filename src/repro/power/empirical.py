"""Empirical power traces: recorded ``(time, power)`` arrays as supplies.

The analytic profiles in :mod:`repro.power.traces` cover the paper's
testbed and three idealized families.  Real intermittent-computing
evaluations replay *recorded* harvesting traces — logger CSVs, published
datasets, or pre-rendered stochastic processes — which this module turns
into first-class :class:`~repro.power.traces.PowerTrace` supplies.

An :class:`EmpiricalTrace` is a piecewise-constant (sample-and-hold)
power signal over ``n`` segments: ``times`` holds the ``n + 1`` segment
edges, ``powers`` the per-segment watts.  A prefix-sum table over
``powers * diff(times)`` makes ``energy(t, dt)`` an *exact* O(log n)
lookup — the cumulative energy ``F(t)`` is evaluated at both window ends
and subtracted, so windowed energies are additive by construction
(``energy(t, a) + energy(t + a, b)`` telescopes to ``energy(t, a + b)``
up to float rounding) and never drift with window count the way numeric
integration does.

Beyond the recorded horizon the trace follows its *end policy*:

* ``"loop"`` — wrap around periodically (the default; deployments replay
  a finite recording forever);
* ``"hold"`` — continue at the final sample's power;
* ``"dead"`` — zero power after the end (supply unplugged).

Importers (:meth:`EmpiricalTrace.from_csv`, :meth:`~EmpiricalTrace.from_npz`,
:meth:`~EmpiricalTrace.from_samples`) validate units and monotonicity and
can resample; :meth:`EmpiricalTrace.stats` summarizes mean/peak power,
outage fraction, and the burst-length distribution.  Composable
transforms (:meth:`~EmpiricalTrace.scale_to_mean_power`,
:meth:`~EmpiricalTrace.time_dilate`, :meth:`~EmpiricalTrace.slice`,
:meth:`~EmpiricalTrace.concat`, :meth:`~EmpiricalTrace.with_outages`)
each return a new trace, so corpus entries can be reshaped without
touching the originals.

``energy`` is a pure function of ``(t, dt)`` — the internal segment hint
only accelerates the lookup and never changes a returned value — which
is what lets the fast engine (:mod:`repro.sim.fastsim`) admit
``EmpiricalTrace`` to its exact-replay whitelist.
"""

from __future__ import annotations

import csv
import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.power.traces import PowerTrace

#: End-of-trace policies understood by :class:`EmpiricalTrace`.
END_POLICIES = ("loop", "hold", "dead")

#: Unit sanity ceiling: harvesting frontends in this problem domain top
#: out around tens of milliwatts, so a peak above this is almost surely
#: a mW-vs-W (or uW-vs-W) column mix-up in an imported file.
DEFAULT_MAX_POWER_W = 10.0

#: Sentinel: "caller did not pass max_power_w" (distinct from None,
#: which explicitly disables the ceiling) — importers fall back to a
#: ceiling persisted in the file, then to the default.
_UNSET = object()


def _is_float(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one (rendered) trace.

    ``outage_fraction`` is the fraction of the recorded duration spent at
    or below ``outage_threshold_w``; ``burst_s`` holds the lengths of the
    maximal above-threshold runs (the distribution deployments care
    about: many short scraps vs few long windows).
    """

    duration_s: float
    n_segments: int
    mean_power_w: float
    peak_power_w: float
    outage_threshold_w: float
    outage_fraction: float
    burst_s: Tuple[float, ...]

    @property
    def n_bursts(self) -> int:
        return len(self.burst_s)

    @property
    def mean_burst_s(self) -> float:
        return float(np.mean(self.burst_s)) if self.burst_s else 0.0

    @property
    def max_burst_s(self) -> float:
        return max(self.burst_s) if self.burst_s else 0.0

    def summary(self) -> str:
        return (
            f"{self.duration_s:g} s, {self.n_segments} segments, "
            f"mean {self.mean_power_w * 1e3:.3f} mW, "
            f"peak {self.peak_power_w * 1e3:.3f} mW, "
            f"outage {self.outage_fraction * 100:.1f}%, "
            f"{self.n_bursts} bursts (mean {self.mean_burst_s * 1e3:.0f} ms, "
            f"max {self.max_burst_s * 1e3:.0f} ms)"
        )


class EmpiricalTrace(PowerTrace):
    """Piecewise-constant power trace backed by numpy sample arrays.

    ``times`` are the ``n + 1`` segment edges (seconds, strictly
    increasing; shifted so the trace starts at 0), ``powers`` the ``n``
    per-segment powers (watts, non-negative).  ``end`` picks the
    end-of-trace policy (see module docstring).  ``max_power_w`` is the
    unit-validation ceiling (pass ``None`` to disable, e.g. for bench
    supplies that are deliberately out of range).
    """

    def __init__(
        self,
        times: Sequence[float],
        powers: Sequence[float],
        *,
        end: str = "loop",
        max_power_w: Optional[float] = DEFAULT_MAX_POWER_W,
    ) -> None:
        if end not in END_POLICIES:
            raise ConfigurationError(
                f"unknown end policy {end!r} (expected one of {END_POLICIES})"
            )
        times = np.asarray(times, dtype=np.float64)
        powers = np.asarray(powers, dtype=np.float64)
        if times.ndim != 1 or powers.ndim != 1:
            raise ConfigurationError("times and powers must be 1-D arrays")
        if len(powers) < 1 or len(times) != len(powers) + 1:
            raise ConfigurationError(
                f"need n >= 1 segments: len(times) == len(powers) + 1, got "
                f"{len(times)} times for {len(powers)} powers"
            )
        if not (np.isfinite(times).all() and np.isfinite(powers).all()):
            raise ConfigurationError("times and powers must be finite")
        if np.any(np.diff(times) <= 0):
            raise ConfigurationError("times must be strictly increasing")
        if np.any(powers < 0):
            raise ConfigurationError("powers must be non-negative")
        if max_power_w is not None and float(powers.max()) > max_power_w:
            raise ConfigurationError(
                f"peak power {powers.max():g} W exceeds {max_power_w:g} W — "
                "check the input units (pass max_power_w=None to override)"
            )
        times = times - times[0]  # traces start at t = 0
        self.times = times
        self.powers = powers
        self.end = end
        # Prefix-sum cumulative-energy table: _cum[i] is the energy of
        # segments [0, i), so F(t) inside segment i is
        # _cum[i] + powers[i] * (t - times[i]) — an exact integral of the
        # piecewise-constant signal, found by one binary search.
        seg_j = powers * np.diff(times)
        cum = np.empty(len(times), dtype=np.float64)
        cum[0] = 0.0
        np.cumsum(seg_j, out=cum[1:])
        self._cum = cum
        # Python-list mirrors: ``bisect`` + float arithmetic on lists is
        # several times faster than numpy scalar indexing, and energy()
        # sits on the simulator's per-draw hot path.
        self._edges_l: List[float] = times.tolist()
        self._cum_l: List[float] = cum.tolist()
        self._powers_l: List[float] = powers.tolist()
        self._n = len(powers)
        self._duration = float(times[-1])
        self._cycle_j = float(cum[-1])
        # Hot-path cache: the last-hit segment's index, edges and power,
        # kept in sync by _locate().  A lookup accelerator only — every
        # branch below returns a value that depends solely on (t, dt),
        # never on which segment was cached (the fastsim purity contract).
        self._hint = 0
        self._lo = self._edges_l[0]
        self._hi = self._edges_l[1]
        self._pw = self._powers_l[0]

    # -- PowerTrace interface -------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Length of the recorded window (one loop period)."""
        return self._duration

    @property
    def cycle_energy_j(self) -> float:
        """Energy of one full pass over the recording."""
        return self._cycle_j

    @property
    def mean_power_w(self) -> float:
        return self._cycle_j / self._duration

    @property
    def peak_power_w(self) -> float:
        return float(self.powers.max())

    def power(self, t: float) -> float:
        if t < 0.0:
            raise ConfigurationError("time must be non-negative")
        if t >= self._duration:
            if self.end == "loop":
                t = math.fmod(t, self._duration)
            elif self.end == "hold":
                return self._powers_l[-1]
            else:  # dead
                return 0.0
        return self._powers_l[self._locate(t)]

    def energy(self, t: float, dt: float) -> float:
        """Exact energy over ``[t, t + dt)`` from the prefix-sum table.

        The common simulator case — a window inside one segment — is a
        single multiply off the cached segment (this method sits on the
        per-draw hot path; ``benchmarks/bench_trace_sampling.py`` holds
        it to ~``ConstantTrace`` cost).  If the guard passes, the cached
        segment provably contains ``[t, t + dt]``, so the same value
        would be computed after any relocation: results stay a pure
        function of ``(t, dt)``.
        """
        if self._lo <= t and 0.0 < dt and t + dt <= self._hi:
            return self._pw * dt
        return self._energy_slow(t, dt)

    def energy_batch(self, starts, dts) -> np.ndarray:
        """Exact vectorization of :meth:`energy` over the prefix-sum table.

        Replicates the branch structure of :meth:`_energy_slow` /
        :meth:`_cum_at` / :meth:`_cum_in` elementwise — every arithmetic
        expression keeps the scalar association order, ``searchsorted``
        plus clip *is* the clamped ``bisect_right`` of :meth:`_locate`,
        and branch selection via masks picks bit-identical values (the
        cached-segment fast path of :meth:`energy` returns the same
        ``powers[i] * dt`` as the slow path's same-segment branch, per
        the purity contract above, so batching never sees the hint).
        """
        t = np.asarray(starts, dtype=np.float64)
        dt = np.broadcast_to(np.asarray(dts, dtype=np.float64), t.shape)
        if np.any(dt < 0.0):
            raise ConfigurationError("dt must be non-negative")
        if np.any(t < 0.0):
            raise ConfigurationError("time must be non-negative")
        if t.size == 0:
            return np.zeros(0, dtype=np.float64)
        times, powers, cum, n = self.times, self.powers, self._cum, self._n
        d = self._duration

        def locate_v(x):
            return np.clip(np.searchsorted(times, x, side="right") - 1,
                           0, n - 1)

        def cum_in_v(x):
            i = locate_v(x)
            return cum[i] + powers[i] * (x - times[i])

        def cum_at_v(x):
            if self.end == "loop":
                k = np.floor(x / d)
                u = x - k * d
                adj = u >= d  # fp guard: x/d rounded down past a boundary
                u = np.where(adj, 0.0, u)
                k = np.where(adj, k + 1.0, k)
                beyond = k * self._cycle_j + cum_in_v(u)
            elif self.end == "hold":
                beyond = self._cycle_j + powers[-1] * (x - d)
            else:  # dead
                beyond = np.full(x.shape, self._cycle_j)
            return np.where(x >= d, beyond, cum_in_v(x))

        end = t + dt
        i = locate_v(t)
        same_seg = end <= times[i + 1]
        start_f = cum[i] + powers[i] * (t - times[i])
        within = np.where(same_seg, powers[i] * dt, cum_in_v(end) - start_f)
        out = np.where(end <= d, within, cum_at_v(end) - cum_at_v(t))
        return np.where(dt == 0.0, 0.0, out)

    # -- lookup internals -----------------------------------------------------

    def _energy_slow(self, t: float, dt: float) -> float:
        if dt < 0.0:
            raise ConfigurationError("dt must be non-negative")
        if t < 0.0:
            raise ConfigurationError("time must be non-negative")
        if dt == 0.0:
            return 0.0
        end = t + dt
        if end <= self._duration:
            i = self._locate(t)
            if end <= self._edges_l[i + 1]:
                # Same segment: identical to the fast path above (the
                # two paths must agree bit for bit — purity contract).
                return self._powers_l[i] * dt
            return self._cum_in(end) - (
                self._cum_l[i] + self._powers_l[i] * (t - self._edges_l[i])
            )
        return self._cum_at(end) - self._cum_at(t)

    def _locate(self, t: float) -> int:
        """Segment containing local time ``t`` (0 <= t < duration).

        The hint makes the simulator's monotone access pattern O(1); the
        returned index depends only on ``t``, so results never depend on
        call history.
        """
        edges = self._edges_l
        i = self._hint
        if not edges[i] <= t < edges[i + 1]:
            i = bisect_right(edges, t) - 1
            if i >= self._n:
                i = self._n - 1
            elif i < 0:
                i = 0
            self._hint = i
            self._lo = edges[i]
            self._hi = edges[i + 1]
            self._pw = self._powers_l[i]
        return i

    def _cum_at(self, t: float) -> float:
        """Cumulative energy F(t) over ``[0, t)`` under the end policy."""
        d = self._duration
        if t >= d:
            if self.end == "loop":
                k = math.floor(t / d)
                u = t - k * d
                if u >= d:  # fp guard: t/d rounded down past a boundary
                    u = 0.0
                    k += 1.0
                return k * self._cycle_j + self._cum_in(u)
            if self.end == "hold":
                return self._cycle_j + self._powers_l[-1] * (t - d)
            return self._cycle_j  # dead
        return self._cum_in(t)

    def _cum_in(self, t: float) -> float:
        i = self._locate(t)
        return self._cum_l[i] + self._powers_l[i] * (t - self._edges_l[i])

    # -- statistics -----------------------------------------------------------

    def stats(self, outage_threshold_w: float = 0.0) -> TraceStats:
        """Summary statistics of the recorded window (one cycle)."""
        if outage_threshold_w < 0:
            raise ConfigurationError("outage threshold must be non-negative")
        durations = np.diff(self.times)
        live = self.powers > outage_threshold_w
        outage_s = float(durations[~live].sum())
        # Burst lengths: merge consecutive above-threshold segments.
        bursts: List[float] = []
        run = 0.0
        for alive, dur in zip(live, durations):
            if alive:
                run += float(dur)
            elif run > 0.0:
                bursts.append(run)
                run = 0.0
        if run > 0.0:
            bursts.append(run)
        return TraceStats(
            duration_s=self._duration,
            n_segments=self._n,
            mean_power_w=self.mean_power_w,
            peak_power_w=self.peak_power_w,
            outage_threshold_w=outage_threshold_w,
            outage_fraction=outage_s / self._duration,
            burst_s=tuple(bursts),
        )

    # -- transforms (each returns a new trace) --------------------------------

    def _with(self, times, powers, *, end=None) -> "EmpiricalTrace":
        return EmpiricalTrace(
            times, powers, end=self.end if end is None else end,
            max_power_w=None,
        )

    def scaled(self, factor: float) -> "EmpiricalTrace":
        """Multiply every power sample by ``factor``."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return self._with(self.times, self.powers * factor)

    def scale_to_mean_power(self, target_w: float) -> "EmpiricalTrace":
        """Rescale so the recorded window's mean power is ``target_w``."""
        if target_w < 0:
            raise ConfigurationError("target mean power must be non-negative")
        mean = self.mean_power_w
        if mean <= 0.0:
            raise ConfigurationError(
                "cannot rescale an all-zero trace to a positive mean"
            )
        return self.scaled(target_w / mean)

    def time_dilate(self, factor: float) -> "EmpiricalTrace":
        """Stretch (>1) or compress (<1) time; powers are unchanged, so
        per-window energy scales by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("dilation factor must be positive")
        return self._with(self.times * factor, self.powers)

    def slice(self, t0: float, t1: float) -> "EmpiricalTrace":
        """The sub-trace over ``[t0, t1]`` of the recorded window."""
        if not 0.0 <= t0 < t1 <= self._duration:
            raise ConfigurationError(
                f"need 0 <= t0 < t1 <= {self._duration:g}, got "
                f"({t0}, {t1})"
            )
        i0 = self._locate(t0)
        # Last included segment: the one with times[i1] < t1 <= times[i1+1]
        # (bisect_left avoids duplicating an edge when t1 lands on one).
        i1 = bisect_left(self._edges_l, t1) - 1
        times = np.concatenate(
            ([t0], self.times[i0 + 1: i1 + 1], [t1])
        )
        powers = self.powers[i0: i1 + 1]
        return self._with(times, powers)

    def concat(self, other: "EmpiricalTrace") -> "EmpiricalTrace":
        """This trace followed by ``other`` (keeps this end policy)."""
        times = np.concatenate(
            (self.times, other.times[1:] - other.times[0] + self._duration)
        )
        powers = np.concatenate((self.powers, other.powers))
        return self._with(times, powers)

    def with_outages(
        self,
        *,
        rate_hz: float,
        mean_outage_s: float,
        seed: int = 0,
    ) -> "EmpiricalTrace":
        """Zero the supply over seeded random windows (Poisson arrivals
        at ``rate_hz``, exponential durations of mean ``mean_outage_s``)
        — connector glitches, shadowing, reader absence."""
        if rate_hz <= 0 or mean_outage_s <= 0:
            raise ConfigurationError("outage rate and duration must be positive")
        rng = np.random.default_rng(seed)
        cuts: List[Tuple[float, float]] = []
        t = float(rng.exponential(1.0 / rate_hz))
        while t < self._duration:
            dur = max(float(rng.exponential(mean_outage_s)), 1e-6)
            cuts.append((t, min(t + dur, self._duration)))
            t += dur + float(rng.exponential(1.0 / rate_hz))
        if not cuts:
            return self._with(self.times, self.powers)
        # Split segments at outage boundaries, then zero covered spans.
        bounds = [b for cut in cuts for b in cut]
        edges = np.unique(np.concatenate((self.times, bounds)))
        left = edges[:-1]
        idx = np.minimum(
            np.searchsorted(self.times, left, side="right") - 1, self._n - 1
        )
        powers = self.powers[idx].copy()
        for start, stop in cuts:
            powers[(left >= start) & (left < stop)] = 0.0
        return self._with(edges, powers)

    def resampled(self, dt_s: float) -> "EmpiricalTrace":
        """Uniform-grid resampling that conserves energy exactly: each new
        bin's power is its interval-averaged power, so ``energy()`` over
        any whole-bin window is unchanged (up to float rounding)."""
        if dt_s <= 0:
            raise ConfigurationError("resample step must be positive")
        n = max(1, int(math.ceil(self._duration / dt_s)))
        edges = np.minimum(np.arange(n + 1, dtype=np.float64) * dt_s,
                           self._duration)
        if edges[-2] >= edges[-1]:  # degenerate final bin: drop it
            edges = edges[:-1]
        # Vectorized F(edge) off the prefix-sum table (one searchsorted
        # for all edges beats n Python-level energy() calls).
        idx = np.clip(np.searchsorted(self.times, edges, side="right") - 1,
                      0, self._n - 1)
        cum = self._cum[idx] + self.powers[idx] * (edges - self.times[idx])
        powers = np.diff(cum) / np.diff(edges)
        return self._with(edges, powers)

    # -- importers / exporters ------------------------------------------------

    @classmethod
    def from_samples(
        cls,
        times: Sequence[float],
        powers: Sequence[float],
        *,
        end: str = "loop",
        max_power_w: Optional[float] = DEFAULT_MAX_POWER_W,
    ) -> "EmpiricalTrace":
        """Build from logger-style samples.

        Accepts either ``len(times) == len(powers) + 1`` (explicit
        segment edges) or ``len(times) == len(powers)`` (sample-and-hold
        readings; the final segment's length repeats the last interval).
        """
        times = np.asarray(times, dtype=np.float64)
        powers = np.asarray(powers, dtype=np.float64)
        if times.ndim == 1 and len(times) == len(powers) and len(times) >= 2:
            times = np.concatenate((times, [times[-1] * 2.0 - times[-2]]))
        return cls(times, powers, end=end, max_power_w=max_power_w)

    @classmethod
    def from_csv(
        cls,
        path,
        *,
        end: Optional[str] = None,
        max_power_w=_UNSET,
    ) -> "EmpiricalTrace":
        """Load a two-column ``time_s,power_w`` CSV.

        ``#``-prefixed lines are comments (``# end=<policy>`` and
        ``# max_power_w=<W|none>`` persist those settings; explicit
        arguments win), a non-numeric first row is treated as a header.
        The ``m`` data rows define ``m - 1`` sample-and-hold segments:
        the last row closes the final interval and its power value is
        ignored — exactly what :meth:`to_csv` writes, so export/import
        round-trips are lossless (including traces built with
        ``max_power_w=None``).  Files without a ``max_power_w``
        directive get the default unit-validation ceiling.
        """
        file_end = None
        file_max: Optional[float] = DEFAULT_MAX_POWER_W
        header_skipped = False
        rows: List[Tuple[float, float]] = []
        with open(path, "r", newline="") as fh:
            for lineno, row in enumerate(csv.reader(fh), 1):
                if not row:
                    continue
                first = row[0].strip()
                if first.startswith("#"):
                    directive = " ".join(cell.strip() for cell in row).lstrip("#").strip()
                    try:
                        if directive.startswith("end="):
                            file_end = directive[4:].strip()
                            if file_end not in END_POLICIES:
                                raise ValueError(file_end)
                        elif directive.startswith("max_power_w="):
                            value = directive[len("max_power_w="):].strip()
                            file_max = None if value == "none" else float(value)
                    except ValueError:
                        raise ConfigurationError(
                            f"{path}: line {lineno}: bad directive "
                            f"{directive!r}"
                        )
                    continue
                try:
                    t, p = float(row[0]), float(row[1])
                except (ValueError, IndexError):
                    # Exactly one non-numeric row before any data is a
                    # column header — and only if none of its cells
                    # parses as a float (a truncated or corrupt first
                    # sample is not a header).  Anything else must
                    # raise, never be silently dropped.
                    if (not rows and not header_skipped
                            and not any(_is_float(cell) for cell in row)):
                        header_skipped = True
                        continue
                    raise ConfigurationError(
                        f"{path}: line {lineno}: expected 'time_s,power_w', "
                        f"got {row!r}"
                    )
                rows.append((t, p))
        if len(rows) < 2:
            raise ConfigurationError(f"{path}: need at least 2 data rows")
        times = np.array([r[0] for r in rows])
        powers = np.array([r[1] for r in rows[:-1]])
        return cls(times, powers, end=end or file_end or "loop",
                   max_power_w=file_max if max_power_w is _UNSET
                   else max_power_w)

    def to_csv(self, path) -> None:
        """Write ``time_s,power_w`` rows (17 significant digits, so the
        float64 samples — and therefore every ``energy()`` value —
        round-trip bit-identically through :meth:`from_csv`).  The
        already-validated samples carry ``# max_power_w=none`` so
        re-import never re-imposes the foreign-file unit ceiling."""
        with open(path, "w", newline="") as fh:
            fh.write("# repro power trace\n")
            fh.write(f"# end={self.end}\n")
            fh.write("# max_power_w=none\n")
            fh.write("time_s,power_w\n")
            for i in range(self._n):
                fh.write(f"{self.times[i]:.17g},{self.powers[i]:.17g}\n")
            # Final edge; the power value closes the file but is ignored
            # on load (documented in from_csv).
            fh.write(f"{self.times[-1]:.17g},{self.powers[-1]:.17g}\n")

    @classmethod
    def from_npz(cls, path, *, max_power_w=_UNSET) -> "EmpiricalTrace":
        """Load ``times``/``powers``/``end`` arrays saved by :meth:`to_npz`.

        Like :meth:`from_csv`, a persisted ``max_power_w`` (NaN = no
        ceiling) is honored unless an explicit argument overrides it, so
        out-of-range traces round-trip too.
        """
        with np.load(path, allow_pickle=False) as data:
            for key in ("times", "powers"):
                if key not in data:
                    raise ConfigurationError(f"{path}: missing array {key!r}")
            end = str(data["end"]) if "end" in data else "loop"
            if max_power_w is _UNSET:
                if "max_power_w" in data:
                    ceiling = float(data["max_power_w"])
                    max_power_w = None if math.isnan(ceiling) else ceiling
                else:
                    max_power_w = DEFAULT_MAX_POWER_W
            return cls(data["times"], data["powers"], end=end,
                       max_power_w=max_power_w)

    def to_npz(self, path) -> None:
        """Save as a compressed ``.npz`` (bit-exact round trip; the
        samples are already validated, so the unit ceiling is persisted
        as disabled — NaN)."""
        np.savez_compressed(
            path, times=self.times, powers=self.powers,
            end=np.asarray(self.end), max_power_w=np.float64("nan"),
        )

    def __repr__(self) -> str:
        return (
            f"EmpiricalTrace({self._n} segments, {self._duration:g} s, "
            f"mean {self.mean_power_w * 1e3:.3f} mW, end={self.end!r})"
        )
