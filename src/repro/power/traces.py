"""Harvested-power traces.

The paper drives its board from a SIGLENT function generator through a
100 uF capacitor — i.e. a square-wave power profile.  This module provides
that trace plus constant, stochastic RF-like, and solar-like profiles so
experiments can stress different intermittency patterns.

A trace answers one question: how much energy arrives in a window
``[t, t + dt)``.  Closed forms are used where available; the stochastic
trace pre-generates piecewise-constant segments from a seed so runs are
reproducible.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class PowerTrace:
    """Interface: instantaneous power and windowed energy."""

    def power(self, t: float) -> float:
        """Harvested power (W) at absolute time ``t`` (s)."""
        raise NotImplementedError

    def energy(self, t: float, dt: float) -> float:
        """Energy (J) harvested during ``[t, t + dt)``.

        Default implementation integrates numerically; subclasses override
        with closed forms when possible.
        """
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        if dt == 0:
            return 0.0
        steps = max(8, min(4096, int(dt / 1e-4)))
        ts = np.linspace(t, t + dt, steps + 1)
        ps = np.array([self.power(float(u)) for u in ts])
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(ps, ts))

    def energy_batch(self, starts, dts) -> np.ndarray:
        """Vectorized :meth:`energy`: element ``i`` is *bitwise* equal to
        ``energy(float(starts[i]), float(dts[i]))``.

        This is the segment-table export the fast simulation engine
        (:mod:`repro.sim.fastsim`) batches harvested-charge computation
        through, so the equality contract is exact, not approximate —
        ``tests/test_trace_batching.py`` pins it per trace family.  The
        base implementation simply loops over the scalar method (correct
        for any subclass by construction); traces with closed forms
        override it with an exact vectorization.  ``dts`` broadcasts
        against ``starts``; both are 1-D.
        """
        starts = np.asarray(starts, dtype=np.float64)
        dts_b = np.broadcast_to(np.asarray(dts, dtype=np.float64), starts.shape)
        return np.array(
            [self.energy(float(t), float(d)) for t, d in zip(starts, dts_b)],
            dtype=np.float64,
        )


class ConstantTrace(PowerTrace):
    """Steady harvest (e.g. a strong thermal gradient)."""

    def __init__(self, power_w: float) -> None:
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        self.power_w = power_w

    def power(self, t: float) -> float:
        return self.power_w

    def energy(self, t: float, dt: float) -> float:
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        return self.power_w * dt

    def energy_batch(self, starts, dts) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.float64)
        dts_b = np.broadcast_to(np.asarray(dts, dtype=np.float64), starts.shape)
        if np.any(dts_b < 0):
            raise ConfigurationError("dt must be non-negative")
        # Elementwise float64 multiply == the scalar expression per element.
        return self.power_w * dts_b


class SquareWaveTrace(PowerTrace):
    """The function-generator profile of the paper's testbed.

    ``power_w`` during the on-phase of each ``period_s`` window (first
    ``duty`` fraction), zero otherwise.
    """

    def __init__(self, power_w: float, period_s: float, duty: float = 0.5) -> None:
        if power_w < 0 or period_s <= 0 or not 0.0 < duty <= 1.0:
            raise ConfigurationError(
                f"invalid square wave (power={power_w}, period={period_s}, "
                f"duty={duty})"
            )
        self.power_w = power_w
        self.period_s = period_s
        self.duty = duty
        #: Reused elementwise buffers for ``energy_batch_trusted`` (the
        #: replay is single-threaded; allocation dominates otherwise).
        self._batch_scratch = None

    def power(self, t: float) -> float:
        phase = math.fmod(t, self.period_s)
        if phase < 0:
            phase += self.period_s
        return self.power_w if phase < self.duty * self.period_s else 0.0

    def energy(self, t: float, dt: float) -> float:
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        # Integrate the on-time overlap exactly, period by period.
        on_len = self.duty * self.period_s
        total_on = 0.0
        start = t
        end = t + dt
        first_period = math.floor(start / self.period_s)
        last_period = math.floor(end / self.period_s)
        for k in range(int(first_period), int(last_period) + 1):
            p0 = k * self.period_s
            lo = max(start, p0)
            hi = min(end, p0 + on_len)
            if hi > lo:
                total_on += hi - lo
        return self.power_w * total_on

    def energy_batch(self, starts, dts) -> np.ndarray:
        """Exact vectorization of :meth:`energy`.

        Each element accumulates its period overlaps left to right in the
        same order as the scalar loop; masked-out periods contribute a
        literal ``+ 0.0``, which is exact because the running ``total_on``
        is always non-negative (``x + 0.0 == x`` for ``x >= 0``).  Windows
        spanning many periods fall back to the scalar loop — the fast
        engine's windows are atom draws and millisecond recharge steps,
        never multi-period integrations.
        """
        starts = np.asarray(starts, dtype=np.float64)
        dts_b = np.broadcast_to(np.asarray(dts, dtype=np.float64), starts.shape)
        if np.any(dts_b < 0):
            raise ConfigurationError("dt must be non-negative")
        return self.energy_batch_trusted(starts, dts_b)

    def energy_batch_trusted(self, starts, dts_b) -> np.ndarray:
        """:meth:`energy_batch` minus input validation (which costs more
        than the arithmetic for the fast engine's block sizes).  Callers
        guarantee 1-D float64 arrays of one shape with non-negative
        ``dts_b``; results are bitwise equal to :meth:`energy_batch`.
        """
        n = starts.size
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        period = self.period_s
        on_len = self.duty * period
        # Scratch buffers persist across calls (allocation costs more than
        # the arithmetic at the fast engine's block sizes); only the final
        # ``power_w * total_on`` product is a fresh array handed back.
        scratch = self._batch_scratch
        if scratch is None or scratch[0].size < n:
            scratch = self._batch_scratch = (
                np.empty(n), np.empty(n), np.empty(n), np.empty(n),
                np.empty(n), np.empty(n), np.empty(n, dtype=bool),
                np.empty(n, dtype=bool),
            )
        end = scratch[0][:n]
        first = scratch[1][:n]
        last = scratch[2][:n]
        k = scratch[3][:n]
        hi = scratch[4][:n]
        lo = scratch[5][:n]
        m1 = scratch[6][:n]
        m2 = scratch[7][:n]
        np.add(starts, dts_b, out=end)
        np.divide(starts, period, out=first)
        np.floor(first, out=first)
        np.divide(end, period, out=last)
        np.floor(last, out=last)
        np.subtract(last, first, out=k)
        max_span = int(k.max())
        if max_span > 64:  # pathological window: delegate to the loop
            return PowerTrace.energy_batch(self, starts, dts_b)
        # The j-loop below is the scalar method's period loop with each
        # intermediate computed elementwise into reused buffers (the ops
        # and their order are unchanged, so every float matches the scalar
        # result bit for bit).  Skipped periods contribute ``d * False``
        # — a literal ``+/- 0.0`` — which is exact on the non-negative
        # running ``total_on``.
        total_on = np.zeros(n, dtype=np.float64)
        for j in range(max_span + 1):
            np.add(first, j, out=k)
            np.multiply(k, period, out=lo)  # p0
            np.add(lo, on_len, out=hi)
            np.minimum(end, hi, out=hi)
            np.maximum(starts, lo, out=lo)
            np.subtract(hi, lo, out=hi)  # d = hi - lo
            np.less_equal(k, last, out=m1)
            np.greater(hi, 0.0, out=m2)
            np.logical_and(m1, m2, out=m1)
            np.multiply(hi, m1, out=hi)
            np.add(total_on, hi, out=total_on)
        return self.power_w * total_on


class StochasticRFTrace(PowerTrace):
    """Bursty ambient-RF-like harvesting: exponential on/off segments."""

    def __init__(
        self,
        mean_power_w: float,
        mean_on_s: float = 0.05,
        mean_off_s: float = 0.05,
        seed: int = 0,
        horizon_s: float = 600.0,
    ) -> None:
        if mean_power_w < 0 or mean_on_s <= 0 or mean_off_s <= 0 or horizon_s <= 0:
            raise ConfigurationError("invalid stochastic trace parameters")
        self.mean_power_w = mean_power_w
        rng = np.random.default_rng(seed)
        # Pre-generate (start, end, power) segments covering the horizon.
        self._segments: List[Tuple[float, float, float]] = []
        t = 0.0
        on = True
        while t < horizon_s:
            dur = float(rng.exponential(mean_on_s if on else mean_off_s))
            dur = max(dur, 1e-4)
            power = (
                float(rng.uniform(0.5, 1.5)) * mean_power_w * (mean_on_s + mean_off_s)
                / mean_on_s
                if on
                else 0.0
            )
            self._segments.append((t, t + dur, power))
            t += dur
            on = not on
        self.horizon_s = t

    def power(self, t: float) -> float:
        t = math.fmod(t, self.horizon_s)
        for start, end, p in self._segments:
            if start <= t < end:
                return p
        return 0.0

    def energy(self, t: float, dt: float) -> float:
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        total = 0.0
        remaining = dt
        cur = t
        while remaining > 1e-12:
            base = math.floor(cur / self.horizon_s) * self.horizon_s
            local = cur - base
            advanced = False
            for start, end, p in self._segments:
                if start <= local < end:
                    take = min(end - local, remaining)
                    total += p * take
                    cur += take
                    remaining -= take
                    advanced = True
                    break
            if not advanced:  # numeric edge: snap to next segment
                cur = base + self.horizon_s
        return total


class SolarTrace(PowerTrace):
    """Slow sinusoidal profile (indoor-light/solar style), clipped at zero."""

    def __init__(self, peak_power_w: float, period_s: float = 60.0) -> None:
        if peak_power_w < 0 or period_s <= 0:
            raise ConfigurationError("invalid solar trace parameters")
        self.peak_power_w = peak_power_w
        self.period_s = period_s

    def power(self, t: float) -> float:
        return max(0.0, self.peak_power_w * math.sin(2 * math.pi * t / self.period_s))

    def energy(self, t: float, dt: float) -> float:
        """Closed-form integral of the clipped sine.

        The positive half-wave of period ``k`` spans
        ``[k*T, k*T + T/2]``; over any sub-interval ``[a, b]`` of it the
        energy is ``P*T/(2*pi) * (cos(2*pi*a/T) - cos(2*pi*b/T))``.
        Summing the overlap per period (the
        :meth:`SquareWaveTrace.energy` pattern) is exact, where the
        generic numeric fallback both rounds and pays ~4096 ``power()``
        calls per window (the tests keep that path as a cross-check).
        """
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        if dt == 0 or self.peak_power_w == 0.0:
            return 0.0
        period = self.period_s
        omega = 2 * math.pi / period
        amplitude = self.peak_power_w / omega
        start = t
        end = t + dt
        first_period = int(math.floor(start / period))
        last_period = int(math.floor(end / period))
        total = 0.0
        # Whole half-waves contribute 2*amplitude each; only the (at
        # most two) boundary periods need the cosine evaluation.
        if last_period - first_period > 1:
            total += 2.0 * amplitude * (last_period - first_period - 1)
        for k in (first_period, last_period) if last_period > first_period \
                else (first_period,):
            p0 = k * period
            lo = max(start, p0)
            hi = min(end, p0 + 0.5 * period)
            if hi > lo:
                total += amplitude * (
                    math.cos(omega * (lo - p0)) - math.cos(omega * (hi - p0))
                )
        return total
