"""Harvested-power traces.

The paper drives its board from a SIGLENT function generator through a
100 uF capacitor — i.e. a square-wave power profile.  This module provides
that trace plus constant, stochastic RF-like, and solar-like profiles so
experiments can stress different intermittency patterns.

A trace answers one question: how much energy arrives in a window
``[t, t + dt)``.  Closed forms are used where available; the stochastic
trace pre-generates piecewise-constant segments from a seed so runs are
reproducible.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class PowerTrace:
    """Interface: instantaneous power and windowed energy."""

    def power(self, t: float) -> float:
        """Harvested power (W) at absolute time ``t`` (s)."""
        raise NotImplementedError

    def energy(self, t: float, dt: float) -> float:
        """Energy (J) harvested during ``[t, t + dt)``.

        Default implementation integrates numerically; subclasses override
        with closed forms when possible.
        """
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        if dt == 0:
            return 0.0
        steps = max(8, min(4096, int(dt / 1e-4)))
        ts = np.linspace(t, t + dt, steps + 1)
        ps = np.array([self.power(float(u)) for u in ts])
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(ps, ts))


class ConstantTrace(PowerTrace):
    """Steady harvest (e.g. a strong thermal gradient)."""

    def __init__(self, power_w: float) -> None:
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        self.power_w = power_w

    def power(self, t: float) -> float:
        return self.power_w

    def energy(self, t: float, dt: float) -> float:
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        return self.power_w * dt


class SquareWaveTrace(PowerTrace):
    """The function-generator profile of the paper's testbed.

    ``power_w`` during the on-phase of each ``period_s`` window (first
    ``duty`` fraction), zero otherwise.
    """

    def __init__(self, power_w: float, period_s: float, duty: float = 0.5) -> None:
        if power_w < 0 or period_s <= 0 or not 0.0 < duty <= 1.0:
            raise ConfigurationError(
                f"invalid square wave (power={power_w}, period={period_s}, "
                f"duty={duty})"
            )
        self.power_w = power_w
        self.period_s = period_s
        self.duty = duty

    def power(self, t: float) -> float:
        phase = math.fmod(t, self.period_s)
        if phase < 0:
            phase += self.period_s
        return self.power_w if phase < self.duty * self.period_s else 0.0

    def energy(self, t: float, dt: float) -> float:
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        # Integrate the on-time overlap exactly, period by period.
        on_len = self.duty * self.period_s
        total_on = 0.0
        start = t
        end = t + dt
        first_period = math.floor(start / self.period_s)
        last_period = math.floor(end / self.period_s)
        for k in range(int(first_period), int(last_period) + 1):
            p0 = k * self.period_s
            lo = max(start, p0)
            hi = min(end, p0 + on_len)
            if hi > lo:
                total_on += hi - lo
        return self.power_w * total_on


class StochasticRFTrace(PowerTrace):
    """Bursty ambient-RF-like harvesting: exponential on/off segments."""

    def __init__(
        self,
        mean_power_w: float,
        mean_on_s: float = 0.05,
        mean_off_s: float = 0.05,
        seed: int = 0,
        horizon_s: float = 600.0,
    ) -> None:
        if mean_power_w < 0 or mean_on_s <= 0 or mean_off_s <= 0 or horizon_s <= 0:
            raise ConfigurationError("invalid stochastic trace parameters")
        self.mean_power_w = mean_power_w
        rng = np.random.default_rng(seed)
        # Pre-generate (start, end, power) segments covering the horizon.
        self._segments: List[Tuple[float, float, float]] = []
        t = 0.0
        on = True
        while t < horizon_s:
            dur = float(rng.exponential(mean_on_s if on else mean_off_s))
            dur = max(dur, 1e-4)
            power = (
                float(rng.uniform(0.5, 1.5)) * mean_power_w * (mean_on_s + mean_off_s)
                / mean_on_s
                if on
                else 0.0
            )
            self._segments.append((t, t + dur, power))
            t += dur
            on = not on
        self.horizon_s = t

    def power(self, t: float) -> float:
        t = math.fmod(t, self.horizon_s)
        for start, end, p in self._segments:
            if start <= t < end:
                return p
        return 0.0

    def energy(self, t: float, dt: float) -> float:
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        total = 0.0
        remaining = dt
        cur = t
        while remaining > 1e-12:
            base = math.floor(cur / self.horizon_s) * self.horizon_s
            local = cur - base
            advanced = False
            for start, end, p in self._segments:
                if start <= local < end:
                    take = min(end - local, remaining)
                    total += p * take
                    cur += take
                    remaining -= take
                    advanced = True
                    break
            if not advanced:  # numeric edge: snap to next segment
                cur = base + self.horizon_s
        return total


class SolarTrace(PowerTrace):
    """Slow sinusoidal profile (indoor-light/solar style), clipped at zero."""

    def __init__(self, peak_power_w: float, period_s: float = 60.0) -> None:
        if peak_power_w < 0 or period_s <= 0:
            raise ConfigurationError("invalid solar trace parameters")
        self.peak_power_w = peak_power_w
        self.period_s = period_s

    def power(self, t: float) -> float:
        return max(0.0, self.peak_power_w * math.sin(2 * math.pi * t / self.period_s))

    def energy(self, t: float, dt: float) -> float:
        """Closed-form integral of the clipped sine.

        The positive half-wave of period ``k`` spans
        ``[k*T, k*T + T/2]``; over any sub-interval ``[a, b]`` of it the
        energy is ``P*T/(2*pi) * (cos(2*pi*a/T) - cos(2*pi*b/T))``.
        Summing the overlap per period (the
        :meth:`SquareWaveTrace.energy` pattern) is exact, where the
        generic numeric fallback both rounds and pays ~4096 ``power()``
        calls per window (the tests keep that path as a cross-check).
        """
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        if dt == 0 or self.peak_power_w == 0.0:
            return 0.0
        period = self.period_s
        omega = 2 * math.pi / period
        amplitude = self.peak_power_w / omega
        start = t
        end = t + dt
        first_period = int(math.floor(start / period))
        last_period = int(math.floor(end / period))
        total = 0.0
        # Whole half-waves contribute 2*amplitude each; only the (at
        # most two) boundary periods need the cosine evaluation.
        if last_period - first_period > 1:
            total += 2.0 * amplitude * (last_period - first_period - 1)
        for k in (first_period, last_period) if last_period > first_period \
                else (first_period,):
            p0 = k * period
            lo = max(start, p0)
            hi = min(end, p0 + 0.5 * period)
            if hi > lo:
                total += amplitude * (
                    math.cos(omega * (lo - p0)) - math.cos(omega * (hi - p0))
                )
        return total
