"""Energy-harvesting supply models: traces, capacitor, harvester, monitor.

Analytic profiles live in :mod:`repro.power.traces`; recorded/generated
supplies are :class:`EmpiricalTrace` (:mod:`repro.power.empirical`),
rendered on demand from the named :data:`CORPUS`
(:mod:`repro.power.corpus`, families in :mod:`repro.power.generators`).
"""

from repro.power.capacitor import Capacitor
from repro.power.corpus import CORPUS, CorpusEntry, TraceCorpus
from repro.power.empirical import (
    END_POLICIES,
    EmpiricalTrace,
    TraceStats,
)
from repro.power.harvester import EnergyHarvester
from repro.power.monitor import VoltageMonitor
from repro.power.traces import (
    ConstantTrace,
    PowerTrace,
    SolarTrace,
    SquareWaveTrace,
    StochasticRFTrace,
)

__all__ = [
    "CORPUS",
    "Capacitor",
    "ConstantTrace",
    "CorpusEntry",
    "EmpiricalTrace",
    "END_POLICIES",
    "EnergyHarvester",
    "PowerTrace",
    "SolarTrace",
    "SquareWaveTrace",
    "StochasticRFTrace",
    "TraceCorpus",
    "TraceStats",
    "VoltageMonitor",
]
