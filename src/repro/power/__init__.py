"""Energy-harvesting supply models: traces, capacitor, harvester, monitor."""

from repro.power.capacitor import Capacitor
from repro.power.harvester import EnergyHarvester
from repro.power.monitor import VoltageMonitor
from repro.power.traces import (
    ConstantTrace,
    PowerTrace,
    SolarTrace,
    SquareWaveTrace,
    StochasticRFTrace,
)

__all__ = [
    "Capacitor",
    "ConstantTrace",
    "EnergyHarvester",
    "PowerTrace",
    "SolarTrace",
    "SquareWaveTrace",
    "StochasticRFTrace",
    "VoltageMonitor",
]
