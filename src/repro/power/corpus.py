"""The named power-trace corpus: supply diversity as data.

A :class:`TraceCorpus` maps entry names to seeded factories that render
:class:`~repro.power.empirical.EmpiricalTrace` supplies on demand — no
binary blobs in the repo, yet ``corpus.get("kinetic-walk", seed=7)`` is
exactly reproducible everywhere (the factory re-renders from the seed).
The bundled default corpus, :data:`CORPUS`, covers the generative
families of :mod:`repro.power.generators` plus composed profiles, and is
the supply vocabulary behind ``TraceSpec(kind="corpus", ...)`` fleet
sweeps and the ``python -m repro traces`` CLI.

Entries are small factories, so registering project-specific recordings
is one call (``seeded=False`` because a recording ignores the seed —
the registry then refuses seed sweeps that would replicate it under
different scenario names)::

    from repro.power import CORPUS, EmpiricalTrace
    CORPUS.register("lab-logger",
                    lambda seed: EmpiricalTrace.from_csv("lab.csv"),
                    "bench logger capture, 2 kHz", seeded=False)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.power import generators
from repro.power.empirical import EmpiricalTrace, TraceStats

#: A corpus factory: ``seed -> EmpiricalTrace`` (deterministic per seed).
TraceFactory = Callable[[int], EmpiricalTrace]


@dataclass(frozen=True)
class CorpusEntry:
    """One registered trace family: a factory plus its one-line story.

    ``seeded=False`` marks entries whose rendering ignores the seed
    (deterministic recordings): the registry then rejects non-zero
    seeds, so a seed sweep cannot silently replicate identical supplies
    under different scenario names.
    """

    name: str
    factory: TraceFactory
    description: str
    seeded: bool = True


class TraceCorpus:
    """Name -> seeded-trace registry with on-demand rendering.

    ``get(name, seed=...)`` renders (and memoizes) the trace;
    ``names()`` lists entries; ``describe(name)`` pairs the description
    with the seed-0 rendering's statistics.  Rendering is deterministic
    per ``(name, seed)``, so fleet workers can materialize corpus
    supplies independently and still agree bit-for-bit.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, CorpusEntry] = {}
        self._rendered: Dict[Tuple[str, int], EmpiricalTrace] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def register(
        self,
        name: str,
        factory: TraceFactory,
        description: str,
        *,
        seeded: bool = True,
    ) -> None:
        """Add an entry; names are unique and stable once registered.

        Pass ``seeded=False`` for deterministic factories (recordings,
        fixed renderings) so seed sweeps over them fail loudly instead
        of multiplying one supply into many named duplicates.
        """
        if not name:
            raise ConfigurationError("corpus entry needs a non-empty name")
        if name in self._entries:
            raise ConfigurationError(f"corpus entry {name!r} already registered")
        self._entries[name] = CorpusEntry(name, factory, description, seeded)

    def names(self) -> List[str]:
        """All entry names, sorted (stable sweep order for grids)."""
        return sorted(self._entries)

    def entry(self, name: str) -> CorpusEntry:
        if name not in self._entries:
            raise ConfigurationError(
                f"unknown corpus entry {name!r} (have: {', '.join(self.names())})"
            )
        return self._entries[name]

    def get(self, name: str, seed: int = 0) -> EmpiricalTrace:
        """Render entry ``name`` under ``seed`` (memoized per pair)."""
        entry = self.entry(name)
        if seed != 0 and not entry.seeded:
            raise ConfigurationError(
                f"corpus entry {name!r} is deterministic (seeded=False): "
                f"seed {seed} would duplicate the seed-0 supply under a "
                "different scenario name"
            )
        key = (name, seed)
        trace = self._rendered.get(key)
        if trace is None:
            trace = entry.factory(seed)
            if not isinstance(trace, EmpiricalTrace):
                raise ConfigurationError(
                    f"corpus factory {name!r} returned "
                    f"{type(trace).__name__}, expected EmpiricalTrace"
                )
            self._rendered[key] = trace
        return trace

    def stats(self, name: str, seed: int = 0) -> TraceStats:
        return self.get(name, seed).stats()

    def describe(self, name: str, seed: int = 0) -> str:
        entry = self.entry(name)
        return f"{entry.name}: {entry.description}\n  {self.stats(name, seed).summary()}"

    def summary_table(self, seed: int = 0) -> str:
        """The ``repro traces list`` table: every entry with its stats.

        ``seed`` renders the seeded entries; deterministic ones always
        show their single (seed-0) rendering.
        """
        header = (
            f"{'entry':<16} {'dur':>7} {'mean':>9} {'peak':>9} "
            f"{'outage':>7} {'bursts':>7}  description"
        )
        lines = [header, "-" * len(header)]
        for name in self.names():
            s = self.stats(name, seed if self._entries[name].seeded else 0)
            lines.append(
                f"{name:<16} {s.duration_s:>6.1f}s "
                f"{s.mean_power_w * 1e3:>7.3f}mW {s.peak_power_w * 1e3:>7.3f}mW "
                f"{s.outage_fraction * 100:>6.1f}% {s.n_bursts:>7d}  "
                f"{self._entries[name].description}"
            )
        return "\n".join(lines)


def _mixed_day(seed: int) -> EmpiricalTrace:
    """A composed profile exercising the transform algebra: office WiFi
    into a cloudy midday into an evening walk, with connector glitches."""
    morning = generators.office_wifi(seed, day_s=60.0, office_fraction=0.9)
    midday = generators.diurnal_solar(seed + 1, day_s=120.0, cloudiness=0.4)
    evening = generators.kinetic_walk(seed + 2, duration_s=60.0)
    day = morning.slice(0.0, 54.0).concat(
        midday.slice(12.0, 108.0)).concat(evening)
    return day.with_outages(rate_hz=1.0 / 30.0, mean_outage_s=1.5, seed=seed)


def _default_corpus() -> TraceCorpus:
    corpus = TraceCorpus()
    corpus.register(
        "rf-markov", lambda seed: generators.markov_rf(seed),
        "Markov-modulated RF bursts (off/scrap/beam chain)")
    corpus.register(
        "wifi-office", lambda seed: generators.office_wifi(seed),
        "office WiFi duty pattern: beacon bursts in work hours")
    corpus.register(
        "solar-clear", lambda seed: generators.diurnal_solar(seed, cloudiness=0.0),
        "clear-sky diurnal solar (compressed day)", seeded=False)
    corpus.register(
        "solar-cloudy", lambda seed: generators.diurnal_solar(seed, cloudiness=0.5),
        "diurnal solar with random cloud fronts")
    corpus.register(
        "kinetic-walk", lambda seed: generators.kinetic_walk(seed),
        "piezo step impulses: walking bouts with rests")
    corpus.register(
        "kinetic-jog",
        lambda seed: generators.kinetic_walk(
            seed, step_hz=2.8, peak_power_w=7e-3, walk_bout_s=45.0,
            rest_bout_s=8.0),
        "faster, harder steps: jogging with short rests")
    corpus.register(
        "testbed-square", generators.testbed_square,
        "the paper's function-generator square wave, recorded",
        seeded=False)
    corpus.register(
        "mixed-day", _mixed_day,
        "office WiFi -> cloudy solar -> evening walk, with outages")
    return corpus


#: The bundled synthetic corpus (process-wide; fleet workers rebuild it
#: per process from the same seeds, so entries agree everywhere).
CORPUS = _default_corpus()
