"""Command-line interface: every study from the shell.

The CLI is a thin face over the study registry
(:mod:`repro.study`) — one executor, two core commands::

    python -m repro list
    python -m repro run <study> [--engine reference|fast] [--workers N]
                                [--serial] [--json OUT] [--npz OUT]
                                [--out DIR] [--resume] [--shard-rows N]
                                [--task ...] [--seed N] [--full]
                                [--samples K] [--corpus [NAME ...]]

plus the classic per-artifact subcommands, kept as thin aliases so
existing invocations and benchmarks keep working::

    python -m repro table1
    python -m repro table2 [--fast]
    python -m repro fig7 [--task mnist|har|okg]
    python -m repro fig8
    python -m repro overhead
    python -m repro ablations
    python -m repro sweep [--axis capacitor|power|trace] [--task ...]
    python -m repro fleet [--task ...] [--workers N] [--serial] [--samples K]
                          [--engine reference|fast] [--corpus [NAME ...]]
    python -m repro traces list
    python -m repro traces describe NAME [--seed N]
    python -m repro traces export NAME --out FILE.{csv,npz} [--seed N]
    python -m repro all [--fast]

and the observability surface (see :mod:`repro.obs`)::

    python -m repro run <study> --metrics METRICS.json --trace TRACE.json
    python -m repro stats METRICS.json
    python -m repro bench report [--dir DIR] [--against DIR]

and the study service (see :mod:`repro.serve`)::

    python -m repro serve [--port P] [--workers N] [--out DIR] [--metrics]
    python -m repro submit <study> [--url URL] [--engine ...] [--json OUT]
                                   [--job-json OUT] [--no-wait]

``--metrics`` captures a merged counters/gauges/durations snapshot of
the run (fleet workers included); ``--trace`` captures spans as Chrome
trace-event JSON (open in Perfetto or ``chrome://tracing``).  Both are
written atomically alongside the study artifacts.

Configuration errors print one line to stderr and exit with status 1.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import __version__
from repro.errors import ConfigurationError, ReproError

#: Hook for fault-injection tests: the opener artifact sinks go through.
_open_artifact = open

#: The classic per-axis sweep subcommand, mapped onto the sweep studies.
_SWEEP_STUDIES = {
    "capacitor": "sweep-capacitor",
    "power": "sweep-power",
    "trace": "sweep-trace",
}

#: ``repro ablations`` renders these three studies (A1-A3), in order.
_ABLATION_STUDIES = ("ablation-overflow", "ablation-buffers", "ablation-dma")


def _profile_from_args(args) -> "Profile":
    from repro.study import Profile

    return Profile(
        tasks=tuple(args.task) if getattr(args, "task", None) else None,
        seed=getattr(args, "seed", 0),
        full=getattr(args, "full", False),
        samples=getattr(args, "samples", 4),
        corpus=(tuple(args.corpus)
                if getattr(args, "corpus", None) is not None else None),
    )


def _execute(name: str, args, *, store=None, on_error: str = "raise") -> "StudyRun":
    from repro.study import run_study

    return run_study(
        name,
        engine=getattr(args, "engine", "reference"),
        workers=getattr(args, "workers", None),
        parallel=not getattr(args, "serial", False),
        profile=_profile_from_args(args),
        store=store,
        on_error=on_error,
    )


# -- core commands ------------------------------------------------------------


def _cmd_list(args) -> None:
    from repro.experiments.reporting import format_table
    from repro.study import get_study, study_names

    rows = []
    for name in study_names():
        study = get_study(name)
        rows.append((
            study.name,
            "fleet" if study.fleet_executed else "direct",
            study.artifact or "-",
            study.title,
        ))
    print(format_table(
        ["study", "execution", "artifact", "title"], rows,
        title="Registered studies ('repro run <study>'; fleet-executed "
              "studies take --engine/--workers)",
    ))


class _ArtifactSink:
    """Atomic artifact writer: ``<path>.tmp`` now, ``os.replace`` at commit.

    Opening the sibling temp file up front keeps the fail-fast bad-path
    check (an unwritable destination fails in milliseconds, before any
    simulation) — but the *destination* is only ever touched by the
    atomic rename in :meth:`commit`, after the payload is fully written
    and fsynced.  A run that fails, or a write that dies mid-stream
    (disk full), discards the temp file and leaves whatever artifact a
    previous run produced exactly as it was.
    """

    def __init__(self, path: str, mode: str, write, note: str = "") -> None:
        self.path = path
        self.tmp = path + ".tmp"
        self.write = write
        self.note = note
        self.fh = _open_artifact(self.tmp, mode)

    def commit(self, table) -> None:
        try:
            with self.fh:
                self.write(self.fh, table)
                self.fh.flush()
                os.fsync(self.fh.fileno())
        except BaseException:
            self.discard()
            raise
        os.replace(self.tmp, self.path)

    def discard(self) -> None:
        try:
            self.fh.close()
        finally:
            try:
                os.unlink(self.tmp)
            except OSError:
                pass


def _open_store(args) -> "Optional[ResultStore]":
    """Build the durable store for ``repro run`` from its flags."""
    from repro.store import MANIFEST_NAME

    if args.resume and not args.out:
        raise ConfigurationError(
            "--resume needs --out DIR (there is no store to resume without "
            "one)")
    if args.shard_rows is not None and not args.out:
        raise ConfigurationError(
            "--shard-rows needs --out DIR (it sizes the store's shards)")
    if not args.out:
        return None
    if args.shard_rows is not None and args.shard_rows < 1:
        raise ConfigurationError("--shard-rows must be >= 1")
    exists = os.path.isfile(os.path.join(args.out, MANIFEST_NAME))
    if exists and not args.resume:
        raise ConfigurationError(
            f"store {args.out!r} already holds results; pass --resume to "
            "reuse them (missing cells are re-simulated, finished ones are "
            "replayed bit-identically) or point --out at a fresh directory")
    from repro.store import ResultStore

    if args.shard_rows is None:
        return ResultStore(args.out)
    return ResultStore(args.out, shard_rows=args.shard_rows)


def _install_faults(args) -> bool:
    """Arm a ``--faults FILE`` chaos plan; True when one was installed."""
    path = getattr(args, "faults", None)
    if not path:
        return False
    import json as _json

    from repro import faults
    from repro.errors import ConfigurationError

    try:
        with open(path) as fh:
            payload = _json.load(fh)
    except ValueError as exc:
        raise ConfigurationError(f"bad fault plan {path}: {exc}")
    faults.install(faults.FaultPlan.from_dict(payload))
    print(f"repro: fault injection armed from {path} "
          f"({len(faults.active_plan().rules)} rule(s))", file=sys.stderr)
    return True


def _cmd_run(args) -> None:
    import json as _json

    from repro import faults, obs
    from repro.study import get_study

    faulted = _install_faults(args)
    store = _open_store(args)
    obs_on = bool(args.metrics or args.trace)
    if obs_on:
        # Fresh registry for this run; FleetRunner ships the flag to its
        # workers and merges their snapshots back, so the artifacts
        # cover the whole process tree.
        obs.reset()
        obs.enable()
    # Open temp files *before* running: a bad path must fail in
    # milliseconds, not after minutes of simulation.  The destination
    # paths themselves are untouched until the run succeeds (see
    # _ArtifactSink) — a failed re-run never destroys a good artifact.
    sinks = []
    try:
        try:
            if args.json:
                sinks.append(_ArtifactSink(
                    args.json, "w",
                    lambda fh, t: fh.write(t.to_json(indent=2))))
            if args.npz:
                # np.savez accepts an open binary handle.
                sinks.append(_ArtifactSink(
                    args.npz, "wb", lambda fh, t: t.to_npz(fh)))
            if args.metrics:
                # Snapshot taken at commit time, i.e. after the run (and
                # after the fleet absorbed its workers' snapshots).
                sinks.append(_ArtifactSink(
                    args.metrics, "w",
                    lambda fh, _t: _json.dump(
                        obs.snapshot(), fh, indent=2, sort_keys=True),
                    note="metrics snapshot"))
            if args.trace:
                sinks.append(_ArtifactSink(
                    args.trace, "w",
                    lambda fh, _t: obs.export_chrome_trace(fh),
                    note="chrome trace"))
            # With a durable store, one broken scenario becomes an error
            # row (already-finished cells are on disk; aborting would
            # help no one); without one, failures stop the run as before.
            on_error = ("record"
                        if store is not None
                        and get_study(args.study).fleet_executed
                        else "raise")
            run = _execute(args.study, args, store=store, on_error=on_error)
        except BaseException:
            for sink in sinks:
                sink.discard()
            raise
        print(run.render())
        for sink in sinks:
            sink.commit(run.table)
            print(f"wrote {sink.path}: {sink.note or repr(run.table)}",
                  file=sys.stderr)
    finally:
        if obs_on:
            obs.reset()
            obs.disable()
        if faulted:
            faults.uninstall()
    if store is not None:
        print(store.summary(), file=sys.stderr)
        if run.report is not None and run.report.failures:
            print(
                f"repro: warning: {run.report.failures} scenario(s) FAILED "
                "(recorded as error rows; re-run with --resume to retry "
                "them)", file=sys.stderr)


# -- classic aliases ----------------------------------------------------------


def _cmd_table1(args) -> None:
    print(_execute("table1", args).render())


def _cmd_table2(args) -> None:
    # The classic subcommand trains the FULL profile unless --fast;
    # 'repro run table2' defaults to the FAST profile (use --full).
    args.full = not args.fast
    print(_execute("table2", args).render())


def _cmd_fig7(args) -> None:
    args.task = [args.task] if args.task else None
    print(_execute("fig7", args).render())


def _cmd_fig8(args) -> None:
    print(_execute("fig8", args).render())


def _cmd_overhead(args) -> None:
    print(_execute("overhead", args).render())


def _cmd_ablations(args) -> None:
    parts = [_execute(name, args).render() for name in _ABLATION_STUDIES]
    print("\n\n".join(parts))


def _cmd_sweep(args) -> None:
    args.task = [args.task] if args.task else None
    print(_execute(_SWEEP_STUDIES[args.axis], args).render())


def _cmd_fleet(args) -> None:
    run = _execute("fleet", args)
    # The classic fleet output: the full report (with wall-clock and
    # worker metadata) plus the model-cache summary.
    print(run.report.render(per_scenario=not args.no_scenarios))
    print()
    print(run.cache.summary())


def _cmd_traces(args) -> None:
    from repro.power import CORPUS

    # Reject ignored arguments (same stance as TraceSpec's per-kind
    # field validation: silently dropping input hides mistakes).
    if args.action == "list":
        if args.name:
            raise ConfigurationError(
                "traces list takes no NAME (use 'describe' for one entry)")
        if args.out:
            raise ConfigurationError("--out only applies to 'export'")
        print(CORPUS.summary_table(seed=args.seed))
        return
    if not args.name:
        raise ConfigurationError(f"traces {args.action} needs an entry NAME")
    if args.action == "describe":
        if args.out:
            raise ConfigurationError("--out only applies to 'export'")
        print(CORPUS.describe(args.name, seed=args.seed))
        return
    # export
    if not args.out:
        raise ConfigurationError("traces export needs --out FILE (.csv or .npz)")
    if not args.out.endswith((".csv", ".npz")):
        raise ConfigurationError(
            f"traces export --out must end in .csv or .npz, got {args.out!r} "
            "(the extension selects the format)"
        )
    trace = CORPUS.get(args.name, seed=args.seed)
    if args.out.endswith(".npz"):
        trace.to_npz(args.out)
    else:
        trace.to_csv(args.out)
    print(f"wrote {args.name} (seed {args.seed}) to {args.out}: {trace!r}")


def _cmd_stats(args) -> None:
    import json

    from repro import obs

    try:
        with open(args.file) as fh:
            snap = json.load(fh)
    except ValueError as exc:
        raise ConfigurationError(f"{args.file}: not valid JSON ({exc})")
    print(obs.render_snapshot(snap))


def _cmd_bench(args) -> None:
    import json

    from repro.experiments.reporting import format_table

    if args.action != "report":
        raise ConfigurationError(f"unknown bench action {args.action!r}")
    root = args.dir or "."
    paths = sorted(
        p for p in os.listdir(root)
        if p.startswith("BENCH_") and p.endswith(".json")
    )
    if not paths:
        raise ConfigurationError(
            f"no BENCH_*.json files under {root!r} (run the benchmarks, "
            "or pass --dir)")
    against = {}
    if args.against:
        for p in os.listdir(args.against):
            if p.startswith("BENCH_") and p.endswith(".json"):
                with open(os.path.join(args.against, p)) as fh:
                    against[p] = json.load(fh)
    blocks = []
    for name in paths:
        with open(os.path.join(root, name)) as fh:
            payload = json.load(fh)
        other = against.get(name, {}).get("cases", {})
        headers = ["case", "median", "speedup", "details"]
        if against:
            headers.append(f"vs {args.against}")
        rows = []
        for case, stats in sorted(payload.get("cases", {}).items()):
            median = stats.get("median_s")
            speedup = stats.get("speedup_vs_reference")
            extras = ", ".join(
                f"{k}={v:g}" for k, v in sorted(stats.items())
                if k not in ("median_s", "speedup_vs_reference",
                             "reference_median_s")
            )
            row = [
                case,
                f"{median * 1e3:.3f} ms" if median is not None else "-",
                f"{speedup:.2f}x" if speedup is not None else "-",
                extras or "-",
            ]
            if against:
                base = other.get(case, {}).get("median_s")
                row.append(
                    f"{median / base:.2f}x"
                    if median is not None and base else "-"
                )
            rows.append(row)
        import datetime

        when = datetime.datetime.fromtimestamp(
            payload.get("created_unix", 0), datetime.timezone.utc
        ).strftime("%Y-%m-%d")
        title = (
            f"{payload.get('bench', name)} — {when}, "
            f"python {payload.get('python', '?')}, "
            f"numpy {payload.get('numpy', '?')}"
            + (", SMOKE" if payload.get("smoke") else "")
        )
        blocks.append(format_table(headers, rows, title=title))
    print("\n\n".join(blocks))


def _cmd_serve(args) -> None:
    from repro import faults, obs
    from repro.serve import StudyService, serve_http

    faulted = _install_faults(args)
    if args.metrics:
        obs.reset()
        obs.enable()
    store = _open_store(args)
    service = StudyService(workers=args.workers, store=store)
    server = serve_http(service, args.host, args.port, log=args.verbose)
    # One parseable line, flushed before blocking: scripts starting the
    # server on an ephemeral port (--port 0) read the bound URL from it.
    print(f"repro serve: listening on {server.url} "
          f"({args.workers} workers)", flush=True)
    try:
        # serve_forever runs on the daemon thread; park until signalled.
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        print("repro serve: shutting down (draining queue)",
              file=sys.stderr)
    finally:
        server.shutdown()
        service.close()
        if faulted:
            faults.uninstall()


def _job_line(job: dict) -> str:
    flavor = "dedup hit" if job.get("dedup") else "executed"
    return (f"repro submit: {job['id']} [{job['study']}] "
            f"{job['state']} ({flavor})")


def _cmd_submit(args) -> None:
    import json as _json

    from repro.serve import JobSpec, ServeClient
    from repro.study import get_study
    from repro.study.table import ResultTable

    spec = JobSpec(
        study=args.study,
        engine=args.engine,
        workers=args.workers,
        parallel=not args.serial,
        profile=_profile_from_args(args),
        timeout_s=args.job_timeout,
    )
    client = ServeClient(args.url)
    job = client.submit(spec)
    print(_job_line(job), file=sys.stderr)
    if args.no_wait:
        print(_json.dumps(job, indent=2))
        return
    job = client.wait(job["id"], timeout=args.timeout)
    if args.job_json:
        sink = _ArtifactSink(
            args.job_json, "w",
            lambda fh, payload: fh.write(_json.dumps(payload, indent=2)))
        sink.commit(job)
    if job["state"] != "done":
        # Surface the server-side failure as the usual CLI error path.
        client.result(job["id"])  # raises JobFailedError
        raise ReproError(f"job {job['id']} ended {job['state']}")
    # Fetch the exact bytes the service serialized: --json artifacts are
    # byte-equal across deduped submissions, by construction.
    raw = client.result_json(job["id"])
    table = ResultTable.from_json(raw.decode("utf-8"))
    if args.json:
        sink = _ArtifactSink(args.json, "wb", lambda fh, _t: fh.write(raw))
        sink.commit(table)
        print(f"wrote {args.json}: {table!r}", file=sys.stderr)
    print(get_study(args.study).render(table))


def _cmd_all(args) -> None:
    _cmd_table1(args)
    print()
    _cmd_table2(args)
    print()
    _cmd_fig7(argparse.Namespace(task=None))
    print()
    _cmd_fig8(args)
    print()
    _cmd_overhead(args)
    print()
    _cmd_ablations(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Enabling Fast "
                    "Deep Learning on Tiny Energy-Harvesting IoT Devices' "
                    "(DATE 2022) through the unified study API.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered studies")

    pr = sub.add_parser("run", help="run a registered study")
    pr.add_argument("study", help="study name (see 'repro list')")
    pr.add_argument("--engine", choices=("reference", "fast"),
                    default="reference",
                    help="simulation engine (fast = precompiled replay, "
                         "bit-identical results)")
    pr.add_argument("--workers", type=int, default=None,
                    help="worker processes for fleet-executed studies "
                         "(default: available CPUs)")
    pr.add_argument("--serial", action="store_true",
                    help="force serial execution")
    pr.add_argument("--json", metavar="OUT",
                    help="also write the ResultTable as lossless JSON")
    pr.add_argument("--npz", metavar="OUT",
                    help="also write the ResultTable as lossless NPZ")
    pr.add_argument("--out", metavar="DIR",
                    help="durable result store: stream scenario results to "
                         "DIR as they finish; finished tables are archived "
                         "there too")
    pr.add_argument("--resume", action="store_true",
                    help="reuse an existing --out store: replay finished "
                         "cells bit-identically, simulate only missing ones")
    pr.add_argument("--shard-rows", type=int, default=None, metavar="N",
                    help="rows per store shard (with --out; default 256)")
    pr.add_argument("--task", choices=("mnist", "har", "okg"), nargs="+",
                    help="tasks to run (default: the study's own)")
    pr.add_argument("--seed", type=int, default=0, help="study seed")
    pr.add_argument("--full", action="store_true",
                    help="full training profile (table2)")
    pr.add_argument("--samples", type=int, default=4,
                    help="samples per scenario session (fleet)")
    pr.add_argument("--corpus", nargs="*", metavar="NAME", default=None,
                    help="sweep corpus-backed supplies (fleet; no names = "
                         "whole corpus)")
    pr.add_argument("--metrics", metavar="OUT",
                    help="enable observability and write the merged "
                         "counters/durations snapshot (workers included) "
                         "as JSON")
    pr.add_argument("--faults", metavar="FILE",
                    help="chaos testing: arm a JSON FaultPlan "
                         "(repro.faults) for this run")
    pr.add_argument("--trace", metavar="OUT",
                    help="enable observability and write spans as Chrome "
                         "trace-event JSON (open in Perfetto)")

    sub.add_parser("table1", help="Table I: BCM storage reduction")

    p2 = sub.add_parser("table2", help="Table II: model accuracy (trains!)")
    p2.add_argument("--fast", action="store_true", help="small profile")

    p7 = sub.add_parser("fig7", help="Figure 7: runtime comparison")
    p7.add_argument("--task", choices=("mnist", "har", "okg"))

    sub.add_parser("fig8", help="Figure 8: FC1 vs BCM block size")
    sub.add_parser("overhead", help="Section IV-A.5: checkpoint overhead")
    sub.add_parser("ablations", help="design-choice ablations A1-A3")

    ps = sub.add_parser("sweep", help="design-space sweeps")
    ps.add_argument("--axis", choices=("capacitor", "power", "trace"),
                    default="power")
    ps.add_argument("--task", choices=("mnist", "har", "okg"))

    pf = sub.add_parser("fleet", help="fleet study: parallel scenario grid")
    pf.add_argument("--task", choices=("mnist", "har", "okg"), nargs="+",
                    help="tasks to sweep (default: mnist)")
    pf.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: available CPUs)")
    pf.add_argument("--serial", action="store_true",
                    help="force the serial fallback")
    pf.add_argument("--samples", type=int, default=4,
                    help="samples per scenario session")
    pf.add_argument("--seed", type=int, default=0, help="grid base seed")
    pf.add_argument("--engine", choices=("reference", "fast"),
                    default="reference",
                    help="simulation engine (fast = precompiled replay, "
                         "bit-identical results)")
    pf.add_argument("--no-scenarios", action="store_true",
                    help="omit the per-scenario table")
    pf.add_argument("--corpus", nargs="*", metavar="NAME", default=None,
                    help="sweep corpus-backed supplies instead of the "
                         "analytic default traces (no names = whole corpus; "
                         "see 'repro traces list')")

    pt = sub.add_parser("traces",
                        help="power-trace corpus: list/describe/export")
    pt.add_argument("action", choices=("list", "describe", "export"))
    pt.add_argument("name", nargs="?",
                    help="corpus entry (describe/export)")
    pt.add_argument("--seed", type=int, default=0,
                    help="rendering seed (default 0)")
    pt.add_argument("--out", help="export path: .csv or .npz")

    px = sub.add_parser("stats",
                        help="render a --metrics snapshot for humans")
    px.add_argument("file", help="metrics JSON written by 'run --metrics'")

    pb = sub.add_parser("bench",
                        help="benchmark trajectory: report BENCH_*.json")
    pb.add_argument("action", choices=("report",))
    pb.add_argument("--dir", default=None, metavar="DIR",
                    help="directory holding BENCH_*.json (default: .)")
    pb.add_argument("--against", default=None, metavar="DIR",
                    help="second directory to compare medians against")

    pv = sub.add_parser(
        "serve",
        help="run the concurrent study service (HTTP JSON API)")
    pv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    pv.add_argument("--port", type=int, default=8321,
                    help="bind port (0 = ephemeral; the bound URL is "
                         "printed on startup)")
    pv.add_argument("--workers", type=int, default=2,
                    help="concurrent job executions (default 2)")
    pv.add_argument("--out", metavar="DIR",
                    help="durable result store backing the service "
                         "(scenario results stream in, finished tables "
                         "are archived)")
    pv.add_argument("--resume", action="store_true",
                    help="reuse an existing --out store")
    pv.add_argument("--shard-rows", type=int, default=None, metavar="N",
                    help="rows per store shard (with --out; default 256)")
    pv.add_argument("--faults", metavar="FILE",
                    help="chaos testing: arm a JSON FaultPlan "
                         "(repro.faults) for this server")
    pv.add_argument("--metrics", action="store_true",
                    help="enable observability (served at GET /metrics)")
    pv.add_argument("--verbose", action="store_true",
                    help="log each HTTP request to stderr")

    pm = sub.add_parser(
        "submit",
        help="submit one study job to a running 'repro serve'")
    pm.add_argument("study", help="study name (see 'repro list')")
    pm.add_argument("--url", default="http://127.0.0.1:8321",
                    help="service base URL (default http://127.0.0.1:8321)")
    pm.add_argument("--engine", choices=("reference", "fast"),
                    default="reference",
                    help="simulation engine (fast = precompiled replay, "
                         "bit-identical results)")
    pm.add_argument("--workers", type=int, default=None,
                    help="fleet worker processes for this job")
    pm.add_argument("--serial", action="store_true",
                    help="force serial execution for this job")
    pm.add_argument("--task", choices=("mnist", "har", "okg"), nargs="+",
                    help="tasks to run (default: the study's own)")
    pm.add_argument("--seed", type=int, default=0, help="study seed")
    pm.add_argument("--full", action="store_true",
                    help="full training profile (table2)")
    pm.add_argument("--samples", type=int, default=4,
                    help="samples per scenario session (fleet)")
    pm.add_argument("--corpus", nargs="*", metavar="NAME", default=None,
                    help="sweep corpus-backed supplies (fleet)")
    pm.add_argument("--job-timeout", type=float, default=None, metavar="S",
                    help="server-side execution timeout for this job")
    pm.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="client-side wait bound (default: wait forever)")
    pm.add_argument("--no-wait", action="store_true",
                    help="print the accepted job as JSON and return "
                         "without waiting")
    pm.add_argument("--json", metavar="OUT",
                    help="write the result table as lossless JSON "
                         "(the service's exact bytes)")
    pm.add_argument("--job-json", metavar="OUT",
                    help="write the final job resource (state, dedup, "
                         "timings) as JSON")

    pa = sub.add_parser("all", help="everything (slow)")
    pa.add_argument("--fast", action="store_true")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "overhead": _cmd_overhead,
    "ablations": _cmd_ablations,
    "sweep": _cmd_sweep,
    "fleet": _cmd_fleet,
    "traces": _cmd_traces,
    "stats": _cmd_stats,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "all": _cmd_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
