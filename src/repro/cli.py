"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro table1
    python -m repro table2 [--fast]
    python -m repro fig7 [--task mnist|har|okg]
    python -m repro fig8
    python -m repro overhead
    python -m repro ablations
    python -m repro sweep [--axis capacitor|power|trace] [--task ...]
    python -m repro fleet [--task ...] [--workers N] [--serial] [--samples K]
                          [--engine reference|fast] [--corpus [NAME ...]]
    python -m repro traces list
    python -m repro traces describe NAME [--seed N]
    python -m repro traces export NAME --out FILE [--seed N]
    python -m repro all [--fast]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args) -> None:
    from repro.experiments import render_table1

    print(render_table1())


def _cmd_table2(args) -> None:
    from repro.experiments import FAST, FULL, render_table2, run_table2

    profile = FAST if args.fast else FULL
    print(render_table2(run_table2(profile)))


def _cmd_fig7(args) -> None:
    from repro.experiments import (
        TASKS,
        render_fig7a,
        render_fig7b,
        render_fig7c,
        run_fig7,
    )

    tasks = [args.task] if args.task else list(TASKS)
    results = {task: run_fig7(task) for task in tasks}
    print(render_fig7a(results))
    print()
    print(render_fig7b(results))
    print()
    print(render_fig7c(results))


def _cmd_fig8(args) -> None:
    from repro.experiments import render_fig8, run_fig8

    print(render_fig8(run_fig8()))


def _cmd_overhead(args) -> None:
    from repro.experiments import render_checkpoint_overhead, run_checkpoint_overhead

    print(render_checkpoint_overhead(run_checkpoint_overhead()))


def _cmd_ablations(args) -> None:
    from repro.experiments import (
        render_buffer_ablation,
        render_dma_ablation,
        render_overflow_ablation,
        run_buffer_ablation,
        run_dma_ablation,
        run_overflow_ablation,
    )

    print(render_overflow_ablation(run_overflow_ablation("mnist")))
    print()
    print(render_buffer_ablation(run_buffer_ablation()))
    print()
    print(render_dma_ablation(run_dma_ablation()))


def _cmd_sweep(args) -> None:
    from repro.experiments.sweeps import (
        capacitor_sweep,
        power_sweep,
        render_sweep,
        trace_sweep,
    )

    task = args.task or "mnist"
    if args.axis == "capacitor":
        print(render_sweep(capacitor_sweep(task), "capacitance", " uF"))
    elif args.axis == "power":
        print(render_sweep(power_sweep(task), "harvest power", " mW"))
    else:
        cells = trace_sweep(task)
        for label, cell in cells.items():
            print(f"{label:>12}: {cell.render()}")


def _cmd_fleet(args) -> None:
    from repro.fleet import FleetRunner, corpus_traces, default_grid

    traces = None
    if args.corpus is not None:
        # --corpus with no names sweeps the whole registered corpus.
        traces = corpus_traces(args.corpus or None)
    grid = default_grid(
        tasks=tuple(args.task) if args.task else ("mnist",),
        n_samples=args.samples,
        base_seed=args.seed,
        traces=traces,
    )
    runner = FleetRunner(args.workers, parallel=not args.serial,
                         engine=args.engine)
    report = runner.run(grid)
    print(report.render(per_scenario=not args.no_scenarios))
    print()
    print(runner.cache.summary())


def _cmd_traces(args) -> None:
    from repro.errors import ConfigurationError
    from repro.power import CORPUS

    # Reject ignored arguments (same stance as TraceSpec's per-kind
    # field validation: silently dropping input hides mistakes).
    if args.action == "list":
        if args.name:
            raise ConfigurationError(
                "traces list takes no NAME (use 'describe' for one entry)")
        if args.out:
            raise ConfigurationError("--out only applies to 'export'")
        print(CORPUS.summary_table(seed=args.seed))
        return
    if not args.name:
        raise ConfigurationError(f"traces {args.action} needs an entry NAME")
    if args.action == "describe":
        if args.out:
            raise ConfigurationError("--out only applies to 'export'")
        print(CORPUS.describe(args.name, seed=args.seed))
        return
    # export
    if not args.out:
        raise ConfigurationError("traces export needs --out FILE (.csv or .npz)")
    trace = CORPUS.get(args.name, seed=args.seed)
    if args.out.endswith(".npz"):
        trace.to_npz(args.out)
    else:
        trace.to_csv(args.out)
    print(f"wrote {args.name} (seed {args.seed}) to {args.out}: {trace!r}")


def _cmd_all(args) -> None:
    _cmd_table1(args)
    print()
    _cmd_table2(args)
    print()
    _cmd_fig7(argparse.Namespace(task=None))
    print()
    _cmd_fig8(args)
    print()
    _cmd_overhead(args)
    print()
    _cmd_ablations(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Enabling Fast "
                    "Deep Learning on Tiny Energy-Harvesting IoT Devices' "
                    "(DATE 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: BCM storage reduction")

    p2 = sub.add_parser("table2", help="Table II: model accuracy (trains!)")
    p2.add_argument("--fast", action="store_true", help="small profile")

    p7 = sub.add_parser("fig7", help="Figure 7: runtime comparison")
    p7.add_argument("--task", choices=("mnist", "har", "okg"))

    sub.add_parser("fig8", help="Figure 8: FC1 vs BCM block size")
    sub.add_parser("overhead", help="Section IV-A.5: checkpoint overhead")
    sub.add_parser("ablations", help="design-choice ablations A1-A3")

    ps = sub.add_parser("sweep", help="design-space sweeps")
    ps.add_argument("--axis", choices=("capacitor", "power", "trace"),
                    default="power")
    ps.add_argument("--task", choices=("mnist", "har", "okg"))

    pf = sub.add_parser("fleet", help="fleet study: parallel scenario grid")
    pf.add_argument("--task", choices=("mnist", "har", "okg"), nargs="+",
                    help="tasks to sweep (default: mnist)")
    pf.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: available CPUs)")
    pf.add_argument("--serial", action="store_true",
                    help="force the serial fallback")
    pf.add_argument("--samples", type=int, default=4,
                    help="samples per scenario session")
    pf.add_argument("--seed", type=int, default=0, help="grid base seed")
    pf.add_argument("--engine", choices=("reference", "fast"),
                    default="reference",
                    help="simulation engine (fast = precompiled replay, "
                         "bit-identical results)")
    pf.add_argument("--no-scenarios", action="store_true",
                    help="omit the per-scenario table")
    pf.add_argument("--corpus", nargs="*", metavar="NAME", default=None,
                    help="sweep corpus-backed supplies instead of the "
                         "analytic default traces (no names = whole corpus; "
                         "see 'repro traces list')")

    pt = sub.add_parser("traces",
                        help="power-trace corpus: list/describe/export")
    pt.add_argument("action", choices=("list", "describe", "export"))
    pt.add_argument("name", nargs="?",
                    help="corpus entry (describe/export)")
    pt.add_argument("--seed", type=int, default=0,
                    help="rendering seed (default 0)")
    pt.add_argument("--out", help="export path; .npz for binary, "
                                  "anything else writes CSV")

    pa = sub.add_parser("all", help="everything (slow)")
    pa.add_argument("--fast", action="store_true")
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "overhead": _cmd_overhead,
    "ablations": _cmd_ablations,
    "sweep": _cmd_sweep,
    "fleet": _cmd_fleet,
    "traces": _cmd_traces,
    "all": _cmd_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
