"""DMA transfer cost model.

ACE moves bulk vectors with the DMA engine (2 cycles/word after setup)
and single words with the CPU (~7 cycles/word); the crossover point is a
few words, which is why Figure 3's dataflow DMAs whole buffers.
"""

from __future__ import annotations

from repro.hw import constants as C


def transfer_cycles(n_words: int) -> float:
    """DMA block transfer of ``n_words`` 16-bit words."""
    if n_words < 0:
        raise ValueError("n_words must be non-negative")
    if n_words == 0:
        return 0.0
    return C.DMA_SETUP_CYCLES + n_words * C.DMA_CYCLES_PER_WORD


def best_mover_cycles(n_words: int) -> float:
    """Cheapest data-movement cost: ACE "selects the right kind of data
    movement method" (Section III-B) — DMA for bulk, CPU for single words."""
    from repro.hw.cpu import copy_cycles

    if n_words < 0:
        raise ValueError("n_words must be non-negative")
    return min(transfer_cycles(n_words), copy_cycles(n_words))


def dma_beats_cpu(n_words: int) -> bool:
    """True when DMA is strictly cheaper than a CPU copy."""
    from repro.hw.cpu import copy_cycles

    return transfer_cycles(n_words) < copy_cycles(n_words)
