"""SRAM and FRAM models.

The memories serve two roles:

* capacity accounting — named region allocation with overflow checks
  (``ResourceExceededError`` mirrors a linker failure on the real part);
* persistence semantics — FRAM carries a key/value store that survives
  power failures (checkpoints, loop indices, model weights), while SRAM's
  store is wiped by :meth:`Sram.power_fail`.

Access *energy* is booked by the owning :class:`~repro.hw.board.Device`
when it executes actions, not here, so the memory classes stay passive.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import CheckpointError, ResourceExceededError


class MemoryRegion:
    """Base byte-capacity accounting with named allocations."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._allocations: Dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, label: str, n_bytes: int) -> None:
        """Reserve ``n_bytes`` under ``label`` (idempotent re-reserve grows)."""
        if n_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        new_total = self.used_bytes - self._allocations.get(label, 0) + n_bytes
        if new_total > self.capacity_bytes:
            raise ResourceExceededError(
                f"{self.name}: allocating {n_bytes} B for {label!r} exceeds "
                f"capacity {self.capacity_bytes} B "
                f"(currently used: {self.used_bytes} B)"
            )
        self._allocations[label] = n_bytes

    def free(self, label: str) -> None:
        self._allocations.pop(label, None)

    def allocations(self) -> Dict[str, int]:
        return dict(self._allocations)


class Sram(MemoryRegion):
    """Volatile SRAM (8 KB on the MSP430FR5994, shared with the LEA)."""

    def __init__(self, capacity_bytes: int = 8 * 1024) -> None:
        super().__init__("SRAM", capacity_bytes)
        self._store: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        self._store[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._store.get(key, default)

    def power_fail(self) -> None:
        """Lose all volatile contents (brown-out)."""
        self._store.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._store


class Fram(MemoryRegion):
    """Nonvolatile FRAM (256 KB): weights, checkpoints, control state."""

    def __init__(self, capacity_bytes: int = 256 * 1024) -> None:
        super().__init__("FRAM", capacity_bytes)
        self._store: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        self._store[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._store.get(key, default)

    def require(self, key: str) -> Any:
        """Fetch a value that must exist (checkpoint restore path)."""
        if key not in self._store:
            raise CheckpointError(f"FRAM key {key!r} missing on restore")
        return self._store[key]

    def delete(self, key: str) -> None:
        self._store.pop(key, None)

    def clear_store(self) -> None:
        """Forget all key/value content (fresh device image)."""
        self._store.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._store
