"""Time and energy accounting ledger.

Every simulated action books its duration and energy under a *component*
(cpu / lea / dma / fram / sram / idle) and optionally a *purpose*
(compute / data-movement / checkpoint / wasted).  Figure 7(c)'s energy
breakdown and the checkpoint-overhead evaluation (Section IV-A.5) read
directly from this ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

COMPONENTS = ("cpu", "lea", "dma", "fram", "sram", "idle")
PURPOSES = ("compute", "data", "checkpoint", "wasted", "idle")


@dataclass
class EnergyMeter:
    """Accumulates per-component and per-purpose time/energy."""

    energy_j: Dict[str, float] = field(default_factory=dict)
    time_s: Dict[str, float] = field(default_factory=dict)
    purpose_energy_j: Dict[str, float] = field(default_factory=dict)

    def record(
        self,
        component: str,
        *,
        time_s: float = 0.0,
        energy_j: float = 0.0,
        purpose: str = "compute",
    ) -> None:
        """Book ``energy_j`` joules over ``time_s`` seconds."""
        if component not in COMPONENTS:
            raise ValueError(f"unknown component {component!r}")
        if purpose not in PURPOSES:
            raise ValueError(f"unknown purpose {purpose!r}")
        if time_s < 0 or energy_j < 0:
            raise ValueError("time and energy must be non-negative")
        self.energy_j[component] = self.energy_j.get(component, 0.0) + energy_j
        self.time_s[component] = self.time_s.get(component, 0.0) + time_s
        self.purpose_energy_j[purpose] = (
            self.purpose_energy_j.get(purpose, 0.0) + energy_j
        )

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def total_time_s(self) -> float:
        return sum(self.time_s.values())

    def energy_of(self, component: str) -> float:
        return self.energy_j.get(component, 0.0)

    def purpose_of(self, purpose: str) -> float:
        return self.purpose_energy_j.get(purpose, 0.0)

    def snapshot(self) -> "EnergyMeter":
        """An independent copy (for before/after diffs)."""
        return EnergyMeter(
            energy_j=dict(self.energy_j),
            time_s=dict(self.time_s),
            purpose_energy_j=dict(self.purpose_energy_j),
        )

    def diff(self, earlier: "EnergyMeter") -> "EnergyMeter":
        """Ledger delta since ``earlier`` (a snapshot of this meter)."""
        out = EnergyMeter()
        for key, val in self.energy_j.items():
            out.energy_j[key] = val - earlier.energy_j.get(key, 0.0)
        for key, val in self.time_s.items():
            out.time_s[key] = val - earlier.time_s.get(key, 0.0)
        for key, val in self.purpose_energy_j.items():
            out.purpose_energy_j[key] = val - earlier.purpose_energy_j.get(key, 0.0)
        return out

    def reset(self) -> None:
        self.energy_j.clear()
        self.time_s.clear()
        self.purpose_energy_j.clear()

    def breakdown(self) -> Dict[str, float]:
        """Energy per component, in millijoules, for reporting."""
        return {k: v * 1e3 for k, v in sorted(self.energy_j.items())}

    def summary(self) -> str:
        lines = [f"total: {self.total_energy_j * 1e3:.3f} mJ over "
                 f"{self.total_time_s * 1e3:.1f} ms"]
        for comp in sorted(self.energy_j):
            lines.append(
                f"  {comp:>5}: {self.energy_j[comp] * 1e3:8.3f} mJ "
                f"({self.time_s.get(comp, 0.0) * 1e3:8.1f} ms)"
            )
        return "\n".join(lines)
