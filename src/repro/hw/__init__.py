"""Simulated MSP430FR5994 hardware: cost constants, memories, CPU/LEA/DMA
cost helpers, energy metering, and the Device that executes atoms."""

from repro.hw import constants
from repro.hw.board import Device, msp430fr5994
from repro.hw.cpu import alu_cycles, copy_cycles, mac_loop_cycles, software_fft_cycles
from repro.hw.dma import best_mover_cycles, dma_beats_cpu, transfer_cycles
from repro.hw.energymeter import EnergyMeter
from repro.hw.lea import LEA_OPS, op_cycles, speedup_vs_cpu_mac
from repro.hw.memory import Fram, MemoryRegion, Sram

__all__ = [
    "Device",
    "EnergyMeter",
    "Fram",
    "LEA_OPS",
    "MemoryRegion",
    "Sram",
    "alu_cycles",
    "best_mover_cycles",
    "constants",
    "copy_cycles",
    "dma_beats_cpu",
    "mac_loop_cycles",
    "msp430fr5994",
    "op_cycles",
    "software_fft_cycles",
    "speedup_vs_cpu_mac",
    "transfer_cycles",
]
