"""Cost-model constants for the simulated MSP430FR5994 + LEA.

Magnitudes are derived from TI documentation (MSP430FR5994 datasheet,
LEA app note SLAA720, EnergyTrace measurements reported in the SONIC/TAILS
paper): a 16 MHz MCU drawing ~120 uA/MHz at 3 V, an LEA that executes
vector ops autonomously at roughly one element per cycle while the CPU
sleeps, DMA at ~2 cycles/word versus ~7 cycles/word for CPU-driven copies,
and FRAM writes costing several times an SRAM access.

The absolute values are approximations — the paper's own numbers come from
a physical testbed — but every experiment in ``benchmarks/`` reports
*ratios* between runtimes sharing these constants, which is what the
paper's evaluation claims are about.  The calibration test suite
(tests/test_calibration.py) pins the ratios to the paper's bands.
"""

from __future__ import annotations

# --- Clocking ---------------------------------------------------------------

#: System clock of the MSP430FR5994 evaluation board.
CPU_FREQ_HZ = 16_000_000

#: Seconds per cycle.
CYCLE_S = 1.0 / CPU_FREQ_HZ

#: Real compiled intermittent systems execute many more cycles than the
#: idealized per-op counts below: compiler-generated loads/stores, FRAM
#: wait states, runtime function calls, and buffer marshalling.  SONIC's
#: published measurements put LeNet-class CPU inference at whole seconds
#: on this MCU; our idealized counts alone land ~8x lower.  The factor is
#: applied uniformly to every action's duration (so all runtime *ratios*
#: are unaffected) and calibrates absolute times/energies to the published
#: scale -- which is what makes a 100 uF capacitor's ~0.45 mJ swing too
#: small for an uncheckpointed inference (Figure 7(b)'s DNFs).
SYSTEM_OVERHEAD_FACTOR = 8.0

#: Effective wall-clock seconds per counted cycle.
EFFECTIVE_CYCLE_S = CYCLE_S * SYSTEM_OVERHEAD_FACTOR

# --- Power draw by active component (W) --------------------------------------
# Active-mode current ~120 uA/MHz @ 3V => ~5.8 mW with CPU crunching.
# During LEA ops the CPU parks in LPM0; LEA+LPM0 drains noticeably less.
# DMA bursts similarly run with the CPU idle.

CPU_ACTIVE_W = 5.8e-3
LEA_ACTIVE_W = 2.6e-3
DMA_ACTIVE_W = 2.0e-3
IDLE_W = 0.4e-3  # LPM with RAM retention while waiting (not charging)

# --- Memory access energy adders (J per 16-bit word) -------------------------
# FRAM accesses go through the cache/wait-state machinery and cost more
# than SRAM; writes are the most expensive (charge pump).

# Raw per-access energies (one physical word access).
SRAM_ACCESS_RAW_J = 0.05e-9
FRAM_READ_RAW_J = 0.3e-9
FRAM_WRITE_RAW_J = 1.5e-9

# Scaled by the same system-overhead factor as cycle counts so one
# *counted* access in an inference kernel stands for the real system's
# full per-element traffic.  Checkpoint commits/restores use the raw
# values: a FLEX state-bit commit really is just a couple of word writes.
SRAM_ACCESS_J = SRAM_ACCESS_RAW_J * SYSTEM_OVERHEAD_FACTOR
FRAM_READ_J = FRAM_READ_RAW_J * SYSTEM_OVERHEAD_FACTOR
FRAM_WRITE_J = FRAM_WRITE_RAW_J * SYSTEM_OVERHEAD_FACTOR

# --- CPU cycle costs ----------------------------------------------------------
# Element-wise DNN inner loops on the MSP430 pay for operand loads from
# FRAM (wait states above 8 MHz), the hardware multiplier handshake, the
# accumulate, and loop control.  SONIC's measurements put LeNet-scale
# models at tens of seconds, implying ~40-60 cycles per MAC all-in.

CPU_MAC_CYCLES = 18
CPU_ALU_CYCLES = 6  # add/compare/max on registers incl. addressing
CPU_COPY_CYCLES_PER_WORD = 7
CPU_FFT_BUTTERFLY_CYCLES = 90  # software complex butterfly (4 MAC + adds)

# --- LEA cycle costs ----------------------------------------------------------
# SLAA720: the LEA datapath streams ~1 element/cycle, but a system-level
# vector op also pays command-block setup, the wake-up interrupt, and
# operand alignment; we fold those into the setup constant and a ~2
# cycle/element effective MAC rate (consistent with the 1.2-4.4x
# system-level speedups the TAILS paper measured).

LEA_SETUP_CYCLES = 150
LEA_MAC_CYCLES_PER_ELEM = 3.0
LEA_ADD_CYCLES_PER_ELEM = 1.0
LEA_MPY_CYCLES_PER_ELEM = 1.0
LEA_CMPLX_MPY_CYCLES_PER_ELEM = 4.0
LEA_FFT_CYCLES_PER_BUTTERFLY = 3.0  # x (N/2 log2 N) butterflies

# --- LEA capacity limits --------------------------------------------------------
# The LEA operates out of a 4 KB shared SRAM: two int16 MAC operand
# vectors fit ~896 elements, and the complex FFT command supports at most
# 256 points (SLAA720).  The paper's largest BCM block (256) sits exactly
# at that limit -- "selecting a larger block size is limited by device
# support" (Section IV-A.4).

LEA_MAX_MAC_ELEMS = 896
LEA_MAX_FFT_POINTS = 256

# --- DMA ----------------------------------------------------------------------

DMA_SETUP_CYCLES = 8
DMA_CYCLES_PER_WORD = 2

# --- Nonvolatile progress-logging costs (cycles) -------------------------------
# Writing a loop index / state bits to FRAM: a couple of word writes plus
# the store instructions.

COMMIT_BASE_CYCLES = 4
COMMIT_CYCLES_PER_WORD = 4

# --- SONIC-specific overheads ---------------------------------------------------
# SONIC's loop continuation "continuously saves the loop control states to
# the nonvolatile memory after each instruction" (paper, Section I): the
# inner multiply-accumulate pays logging cycles per element, and each
# output element additionally pays a task-boundary commit.

SONIC_PER_ELEM_OVERHEAD_CYCLES = 6
SONIC_LOOP_OVERHEAD_CYCLES = 28
SONIC_LOOP_FRAM_WORDS = 3

# --- TAILS-specific overheads ----------------------------------------------------
# TAILS commits DMA'd vector-op results and loop indices after each op and
# pays a task-transition cost per vector operation (channel/queue
# management of the task-based runtime).

TAILS_COMMIT_WORDS = 2
TAILS_TASK_CYCLES = 400

# --- FLEX-specific costs -----------------------------------------------------------
# FLEX state-bit commit: 4 control bits + block index, padded to words.

FLEX_COMMIT_WORDS = 2
