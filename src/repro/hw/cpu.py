"""CPU cycle-cost helpers (MSP430 core at 16 MHz).

Pure functions mapping work items to cycle counts; the
:class:`~repro.hw.board.Device` turns cycles into time and energy.
"""

from __future__ import annotations

from repro.hw import constants as C


def mac_loop_cycles(n_macs: int) -> float:
    """Element-wise multiply-accumulate loop (software inner product)."""
    if n_macs < 0:
        raise ValueError("n_macs must be non-negative")
    return n_macs * C.CPU_MAC_CYCLES


def alu_cycles(n_ops: int) -> float:
    """Generic ALU work: compares, max-pool, ReLU, additions."""
    if n_ops < 0:
        raise ValueError("n_ops must be non-negative")
    return n_ops * C.CPU_ALU_CYCLES


def copy_cycles(n_words: int) -> float:
    """CPU-driven memory copy (the slow alternative to DMA)."""
    if n_words < 0:
        raise ValueError("n_words must be non-negative")
    return n_words * C.CPU_COPY_CYCLES_PER_WORD


def software_fft_cycles(n: int) -> float:
    """Software complex FFT: (N/2) log2 N butterflies on the CPU."""
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"FFT length must be a power of two >= 2, got {n}")
    log2n = n.bit_length() - 1
    return (n / 2) * log2n * C.CPU_FFT_BUTTERFLY_CYCLES
