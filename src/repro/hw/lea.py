"""LEA (Low Energy Accelerator) vector-operation cost model.

The LEA executes vector commands (FFT, IFFT, MAC, ADD, MPY, complex
multiply, shift) from its shared SRAM without CPU intervention; the CPU
issues a command block and sleeps.  Costs follow SLAA720: a fixed
command-issue overhead plus a per-element rate, and ~2.5 cycles per
radix-2 butterfly for the FFT.
"""

from __future__ import annotations

from repro.hw import constants as C

#: Vector commands the LEA supports (subset used by ACE).
LEA_OPS = ("mac", "add", "mpy", "cmplx_mpy", "fft", "ifft", "shift", "bexp")


def op_cycles(op: str, length: int) -> float:
    """Cycle cost of one LEA command over a ``length``-element vector.

    Vectors longer than the LEA's working memory allows are executed as
    multiple tiled commands (each paying the setup cost), exactly as real
    firmware must: MACs tile at ``LEA_MAX_MAC_ELEMS`` elements; FFTs
    beyond ``LEA_MAX_FFT_POINTS`` are rejected (no such command exists).
    """
    if op not in LEA_OPS:
        raise ValueError(f"unknown LEA op {op!r}; expected one of {LEA_OPS}")
    if length <= 0:
        raise ValueError(f"vector length must be positive, got {length}")
    if op in ("fft", "ifft"):
        if length & (length - 1):
            raise ValueError(f"FFT length must be a power of two, got {length}")
        if length > C.LEA_MAX_FFT_POINTS:
            raise ValueError(
                f"LEA supports FFTs up to {C.LEA_MAX_FFT_POINTS} points, "
                f"got {length}"
            )
        log2n = length.bit_length() - 1
        return C.LEA_SETUP_CYCLES + (length / 2) * log2n * C.LEA_FFT_CYCLES_PER_BUTTERFLY
    per_elem = {
        "mac": C.LEA_MAC_CYCLES_PER_ELEM,
        "add": C.LEA_ADD_CYCLES_PER_ELEM,
        "mpy": C.LEA_MPY_CYCLES_PER_ELEM,
        "cmplx_mpy": C.LEA_CMPLX_MPY_CYCLES_PER_ELEM,
        "shift": C.LEA_MPY_CYCLES_PER_ELEM,
        "bexp": C.LEA_ADD_CYCLES_PER_ELEM,
    }[op]
    tiles = -(-length // C.LEA_MAX_MAC_ELEMS)
    return tiles * C.LEA_SETUP_CYCLES + length * per_elem


def speedup_vs_cpu_mac(length: int) -> float:
    """How much faster the LEA runs a MAC than the CPU's software loop.

    Used by documentation/benchmarks; grows with vector length as the
    fixed setup cost amortizes.
    """
    from repro.hw.cpu import mac_loop_cycles

    return mac_loop_cycles(length) / op_cycles("mac", length)
