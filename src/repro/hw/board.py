"""The simulated MSP430FR5994 device.

A :class:`Device` owns the memories, an :class:`~repro.hw.energymeter.
EnergyMeter`, and optionally an :class:`~repro.power.harvester.
EnergyHarvester` supply.  It executes :class:`~repro.sim.atoms.Atom`s:
cycles become time (at 16 MHz), time becomes core energy (via the active
component's power draw), and memory traffic adds per-word access energy.
With a supply attached, every action draws from the capacitor and can
raise :class:`~repro.errors.PowerFailureError` mid-program.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import PowerFailureError
from repro.hw import constants as C
from repro.hw.energymeter import EnergyMeter
from repro.hw.memory import Fram, Sram
from repro.power.harvester import EnergyHarvester
from repro.sim.atoms import Atom

_COMPONENT_POWER_W = {
    "cpu": C.CPU_ACTIVE_W,
    "lea": C.LEA_ACTIVE_W,
    "dma": C.DMA_ACTIVE_W,
}


class Device:
    """Cycle-approximate MSP430FR5994 + LEA."""

    def __init__(
        self,
        *,
        sram: Optional[Sram] = None,
        fram: Optional[Fram] = None,
        supply: Optional[EnergyHarvester] = None,
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        self.sram = sram or Sram()
        self.fram = fram or Fram()
        self.supply = supply
        self.meter = meter or EnergyMeter()
        self.reboots = 0

    # -- cost evaluation -----------------------------------------------------

    def atom_cost(self, atom: Atom, fraction: float = 1.0) -> Tuple[float, float]:
        """``(time_s, energy_j)`` of executing ``fraction`` of ``atom``."""
        time_s = atom.cycles * fraction * C.EFFECTIVE_CYCLE_S
        core_j = _COMPONENT_POWER_W[atom.component] * time_s
        mem_j = fraction * (
            atom.fram_reads * C.FRAM_READ_J
            + atom.fram_writes * C.FRAM_WRITE_J
            + atom.sram_accesses * C.SRAM_ACCESS_J
        )
        return time_s, core_j + mem_j

    def commit_cost(self, words: int) -> Tuple[float, float]:
        """``(time_s, energy_j)`` of a progress commit of ``words`` words.

        Commits are genuine word writes (loop index / state bits), so they
        use raw cycle time and raw FRAM energy, not the system-overhead-
        scaled values that calibrate the inference kernels.
        """
        cycles = C.COMMIT_BASE_CYCLES + words * C.COMMIT_CYCLES_PER_WORD
        time_s = cycles * C.CYCLE_S
        energy = C.CPU_ACTIVE_W * time_s + words * C.FRAM_WRITE_RAW_J
        return time_s, energy

    # -- execution -------------------------------------------------------------

    def _draw_and_record(self, bookings, time_s: float) -> None:
        """Draw the total of ``bookings`` from the supply and meter it.

        ``bookings`` is a list of ``(component, time_s, energy_j, purpose)``.
        On a brown-out only the energy that was actually available gets
        metered (the action was cut short), scaled proportionally across
        the bookings, and the failure propagates.
        """
        total_j = sum(b[2] for b in bookings)
        scale = 1.0
        failure = None
        if self.supply is not None:
            avail = self.supply.available_energy_j
            harvested = (
                self.supply.trace.energy(self.supply.clock_s, time_s)
                * self.supply.efficiency
            )
            try:
                self.supply.draw(total_j, time_s)
            except PowerFailureError as exc:
                failure = exc
                spent = min(total_j, avail + harvested)
                scale = spent / total_j if total_j > 0 else 0.0
        for component, t, e, purpose in bookings:
            self.meter.record(
                component, time_s=t * scale, energy_j=e * scale, purpose=purpose
            )
        if failure is not None:
            raise failure

    def execute(self, atom: Atom, fraction: float = 1.0) -> None:
        """Run (a fraction of) an atom: meter it and draw from the supply."""
        time_s, energy_j = self.atom_cost(atom, fraction)
        fram_j = fraction * (
            atom.fram_reads * C.FRAM_READ_J + atom.fram_writes * C.FRAM_WRITE_J
        )
        sram_j = fraction * atom.sram_accesses * C.SRAM_ACCESS_J
        core_j = energy_j - fram_j - sram_j
        bookings = [(atom.component, time_s, core_j, atom.purpose)]
        if fram_j:
            bookings.append(("fram", 0.0, fram_j, atom.purpose))
        if sram_j:
            bookings.append(("sram", 0.0, sram_j, atom.purpose))
        self._draw_and_record(bookings, time_s)

    def checkpoint(self, words: int) -> None:
        """Write ``words`` of progress/checkpoint state to FRAM."""
        time_s, energy_j = self.commit_cost(words)
        fram_j = words * C.FRAM_WRITE_RAW_J
        self._draw_and_record(
            [
                ("cpu", time_s, energy_j - fram_j, "checkpoint"),
                ("fram", 0.0, fram_j, "checkpoint"),
            ],
            time_s,
        )

    def checkpoint_bulk(self, words: int, count: int) -> None:
        """``count`` successive commits of ``words`` each, booked together
        (used for per-iteration loop-index logging)."""
        time_s, energy_j = self.commit_cost(words)
        fram_j = words * C.FRAM_WRITE_RAW_J
        self._draw_and_record(
            [
                ("cpu", time_s * count, (energy_j - fram_j) * count, "checkpoint"),
                ("fram", 0.0, fram_j * count, "checkpoint"),
            ],
            time_s * count,
        )

    def restore(self, words: int) -> None:
        """Read ``words`` of progress/snapshot state back after a reboot."""
        cycles = C.COMMIT_BASE_CYCLES + words * C.COMMIT_CYCLES_PER_WORD
        time_s = cycles * C.CYCLE_S
        fram_j = words * C.FRAM_READ_RAW_J
        self._draw_and_record(
            [
                ("cpu", time_s, C.CPU_ACTIVE_W * time_s, "checkpoint"),
                ("fram", 0.0, fram_j, "checkpoint"),
            ],
            time_s,
        )

    def on_power_failure(self) -> None:
        """Brown-out: volatile state is gone."""
        self.sram.power_fail()
        self.reboots += 1

    # -- convenience ----------------------------------------------------------

    @property
    def continuous_power(self) -> bool:
        return self.supply is None


def msp430fr5994(supply: Optional[EnergyHarvester] = None) -> Device:
    """Factory with the evaluation board's memory sizes."""
    return Device(sram=Sram(8 * 1024), fram=Fram(256 * 1024), supply=supply)
